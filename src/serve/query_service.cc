#include "serve/query_service.h"

#include <algorithm>

#include "graphio/pattern_parser.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {
namespace {

// Admission accounting: submitted == accepted + degraded + rejected.
Counter& SubmittedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.submitted");
  return c;
}
Counter& AcceptedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.accepted");
  return c;
}
Counter& DegradedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.degraded");
  return c;
}
Counter& RejectedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.rejected");
  return c;
}
// Outcome accounting over admitted sessions.
Counter& CompletedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.completed");
  return c;
}
Counter& ErrorCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("ceci.serve.errors");
  return c;
}
Counter& ExpiredInQueueCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.expired_in_queue");
  return c;
}
Counter& CancelledCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.cancelled");
  return c;
}
Gauge& QueueDepthGauge() {
  static Gauge& g =
      MetricsRegistry::Global().GetGauge("ceci.serve.queue_depth");
  return g;
}
Gauge& ActiveGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge("ceci.serve.active");
  return g;
}
Histogram& QueueLatencyHistogram() {
  static Histogram& h =
      MetricsRegistry::Global().GetHistogram("ceci.serve.queue_us");
  return h;
}
Histogram& ExecLatencyHistogram() {
  static Histogram& h =
      MetricsRegistry::Global().GetHistogram("ceci.serve.exec_us");
  return h;
}
Histogram& TotalLatencyHistogram() {
  static Histogram& h =
      MetricsRegistry::Global().GetHistogram("ceci.serve.latency_us");
  return h;
}

std::uint64_t Micros(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

/// Access-log projection of a finished (or rejected) session.
AccessRecord MakeAccessRecord(const ServeRequest& req,
                              const ServeResponse& response) {
  AccessRecord record;
  record.request_id = response.request_id;
  record.fingerprint = QueryFingerprint(req.pattern);
  record.admission = AdmissionName(response.admission);
  if (response.admission == Admission::kRejected) {
    record.outcome = "busy";
  } else if (!response.status.ok()) {
    record.outcome = "error";
    record.error = response.status.ToString();
  } else {
    record.outcome = "ok";
    record.termination = TerminationReasonName(response.termination);
  }
  record.queue_us = Micros(response.queue_seconds);
  record.exec_us = Micros(response.match_seconds);
  record.total_us = Micros(response.total_seconds);
  record.embeddings = response.embeddings;
  record.cache_hit = response.cache_hit;
  record.budget_charged_bytes = response.budget_charged_bytes;
  return record;
}

}  // namespace

std::string AdmissionName(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kDegraded:
      return "degraded";
    case Admission::kRejected:
      return "rejected";
  }
  return "?";
}

struct QueryService::Session {
  ServeRequest req;
  Admission admission = Admission::kAccepted;
  std::promise<ServeResponse> promise;
  Timer queued;  // started at Submit(); read when a runner picks it up
};

QueryService::QueryService(const Graph& data, const ServiceOptions& options)
    : data_(data), options_(options) {
  options_.limits.max_concurrent =
      std::max<std::size_t>(options_.limits.max_concurrent, 1);
  if (options_.pool_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.pool_threads);
  }
  if (options_.cache_indexes) {
    cached_ = std::make_unique<CachedMatcher>(data_);
  } else {
    uncached_ = std::make_unique<CeciMatcher>(data_);
  }
  runners_.reserve(options_.limits.max_concurrent);
  for (std::size_t i = 0; i < options_.limits.max_concurrent; ++i) {
    runners_.emplace_back(&QueryService::RunnerLoop, this);
  }
}

QueryService::~QueryService() { Shutdown(); }

std::future<ServeResponse> QueryService::Submit(ServeRequest request) {
  SubmittedCounter().Increment();
  auto session = std::make_unique<Session>();
  session->req = std::move(request);
  if (session->req.request_id.empty()) {
    session->req.request_id = NextRequestId();
  }
  std::future<ServeResponse> future = session->promise.get_future();
  {
    MutexLock lock(mutex_);
    if (stopping_ || queue_.size() >= options_.limits.max_queue) {
      RejectedCounter().Increment();
      ServeResponse response;
      response.request_id = session->req.request_id;
      response.admission = Admission::kRejected;
      // Logged under the lock: AccessLog has its own mutex and never
      // calls back into the service, so the order mutex_ -> log is safe,
      // and rejections are rare enough that the fwrite doesn't matter.
      if (options_.access_log != nullptr) {
        options_.access_log->Write(MakeAccessRecord(session->req, response));
      }
      session->promise.set_value(std::move(response));
      return future;
    }
    session->admission = queue_.size() >= options_.limits.degrade_depth
                             ? Admission::kDegraded
                             : Admission::kAccepted;
    if (session->admission == Admission::kDegraded) {
      DegradedCounter().Increment();
    } else {
      AcceptedCounter().Increment();
    }
    queue_.push_back(std::move(session));
    QueueDepthGauge().Set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.NotifyOne();
  return future;
}

ServeResponse QueryService::Execute(ServeRequest request) {
  return Submit(std::move(request)).get();
}

Status QueryService::InstallPrebuiltIndex(const std::string& path,
                                          bool use_mmap) {
  if (cached_ == nullptr) {
    return Status::InvalidArgument(
        "prebuilt indexes require cache_indexes (the service was configured "
        "without an index cache)");
  }
  return cached_->InstallPrebuilt(path, use_mmap);
}

void QueryService::RunnerLoop() {
  for (;;) {
    std::unique_ptr<Session> session;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and fully drained
      session = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<std::int64_t>(queue_.size()));
      ++active_;
      ActiveGauge().Set(static_cast<std::int64_t>(active_));
    }
    Process(*session);
    {
      MutexLock lock(mutex_);
      --active_;
      ActiveGauge().Set(static_cast<std::int64_t>(active_));
    }
  }
}

void QueryService::Process(Session& session) {
  // Pin the request id to this thread before any span opens so every
  // span the session produces (including enumeration on this thread)
  // carries it into trace/profiler output.
  TraceTag tag(session.req.request_id);
  TraceSpan span("serve/process");
  if (options_.pre_match_hook) options_.pre_match_hook();

  ServeResponse response;
  response.request_id = session.req.request_id;
  response.admission = session.admission;
  response.queue_seconds = session.queued.Seconds();
  QueueLatencyHistogram().Record(Micros(response.queue_seconds));

  const auto finish = [this, &session, &response] {
    response.total_seconds = response.queue_seconds + response.match_seconds;
    TotalLatencyHistogram().Record(Micros(response.total_seconds));
    if (options_.access_log != nullptr) {
      options_.access_log->Write(MakeAccessRecord(session.req, response));
    }
    session.promise.set_value(std::move(response));
  };

  // The effective budget is derived at pickup time: degraded admissions
  // clamp limit/deadline, and the deadline spans the queue wait, so the
  // remainder left for execution shrinks while the session waits.
  double deadline = session.req.deadline_seconds > 0.0
                        ? session.req.deadline_seconds
                        : options_.limits.default_deadline_seconds;
  std::uint64_t limit = session.req.limit;
  if (session.admission == Admission::kDegraded) {
    if (options_.limits.degraded_deadline_seconds > 0.0) {
      deadline = deadline > 0.0
                     ? std::min(deadline,
                                options_.limits.degraded_deadline_seconds)
                     : options_.limits.degraded_deadline_seconds;
    }
    if (options_.limits.degraded_limit > 0) {
      limit = limit > 0 ? std::min(limit, options_.limits.degraded_limit)
                        : options_.limits.degraded_limit;
    }
  }

  if (shutdown_token_.cancelled()) {
    // Drained at shutdown: the session never ran.
    response.termination = TerminationReason::kCancelled;
    CancelledCounter().Increment();
    finish();
    return;
  }

  double remaining = 0.0;
  if (deadline > 0.0) {
    remaining = deadline - response.queue_seconds;
    if (remaining <= 0.0) {
      // Deadline spent entirely in the queue: report kDeadline truthfully
      // without running the match.
      response.termination = TerminationReason::kDeadline;
      ExpiredInQueueCounter().Increment();
      finish();
      return;
    }
  }

  auto query = ParsePattern(session.req.pattern);
  if (!query.ok()) {
    response.status = query.status();
    ErrorCounter().Increment();
    finish();
    return;
  }

  MatchOptions match;
  match.threads = pool_ != nullptr
                      ? std::max<std::size_t>(options_.threads_per_query, 1)
                      : 1;
  match.pool = pool_.get();
  match.limit = limit;
  match.budget.token = &shutdown_token_;
  if (remaining > 0.0) match.budget.deadline_seconds = remaining;

  Timer exec;
  auto result = cached_ != nullptr ? cached_->Match(*query, match)
                                   : uncached_->Match(*query, match);
  response.match_seconds = exec.Seconds();
  ExecLatencyHistogram().Record(Micros(response.match_seconds));
  if (!result.ok()) {
    response.status = result.status();
    ErrorCounter().Increment();
    finish();
    return;
  }
  response.embeddings = result->embedding_count;
  response.termination = result->termination;
  response.cache_hit = result->stats.index_cache_hit;
  response.budget_charged_bytes = result->stats.budget.charged_bytes;
  if (session.req.explain) response.index_bytes = result->stats.ceci_bytes;
  CompletedCounter().Increment();
  finish();
}

void QueryService::Shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  shutdown_token_.RequestCancel();
  cv_.NotifyAll();
  for (std::thread& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
}

std::size_t QueryService::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t QueryService::active() const {
  MutexLock lock(mutex_);
  return active_;
}

}  // namespace ceci
