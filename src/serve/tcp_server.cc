#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "serve/protocol.h"
#include "telemetry/access_log.h"
#include "util/metrics_registry.h"

namespace ceci {
namespace {

Counter& ConnectionCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.connections");
  return c;
}
Gauge& LiveConnectionGauge() {
  static Gauge& g =
      MetricsRegistry::Global().GetGauge("ceci.serve.live_connections");
  return g;
}
Counter& AcceptErrorCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.serve.accept_errors");
  return c;
}

/// Writes the whole line + LF; MSG_NOSIGNAL keeps a client that hung up
/// from killing the process with SIGPIPE.
bool SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

TcpServer::TcpServer(QueryService& service, const TcpServerOptions& options)
    : service_(service), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);  // lint: raw-socket TCP listener
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::IoError(std::string("bind ") + options_.host + ": " +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread(&TcpServer::AcceptLoop, this, listen_fd_);
  return Status::Ok();
}

void TcpServer::AcceptLoop(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      const int err = errno;
      if (err == EINTR || err == ECONNABORTED) continue;
      // Transient resource exhaustion (fd limits, kernel memory) must not
      // take the listener down: the pending connection stays queued, so
      // back off briefly and retry once pressure clears. Everything else
      // (EBADF after close, EINVAL) really is the end of the listener.
      if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
        AcceptErrorCounter().Increment();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      AcceptErrorCounter().Increment();
      return;  // listener closed or unrecoverable
    }
    ConnectionCounter().Increment();
    MutexLock lock(mutex_);
    if (stopping_.load(std::memory_order_acquire) ||
        live_fds_.size() >= options_.max_connections) {
      SendLine(fd, "ERR too_many_connections");
      ::close(fd);
      continue;
    }
    live_fds_.insert(fd);
    LiveConnectionGauge().Set(static_cast<std::int64_t>(live_fds_.size()));
    conn_threads_.emplace_back(&TcpServer::ServeConnection, this, fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      open = HandleLine(fd, line);
    }
  }
  {
    MutexLock lock(mutex_);
    live_fds_.erase(fd);
    LiveConnectionGauge().Set(static_cast<std::int64_t>(live_fds_.size()));
  }
  ::close(fd);
}

bool TcpServer::HandleLine(int fd, const std::string& line) {
  auto request = ParseRequestLine(line);
  if (!request.ok()) {
    return SendLine(fd, "ERR " + OneLine(request.status().ToString()));
  }
  switch (request->kind) {
    case RequestKind::kPing:
      return SendLine(fd, "PONG");
    case RequestKind::kQuit:
      return false;
    case RequestKind::kStats:
      // The JSON may be pretty-printed; the protocol is line-framed.
      return SendLine(
          fd, OneLine(options_.telemetry != nullptr
                          ? options_.telemetry->VarzJson()
                          : MetricsRegistry::Global().SnapshotJson()));
    case RequestKind::kMatch: {
      // The request id is minted here — at accept time, before admission
      // — so even rejected requests correlate across the response line,
      // the access log, and trace spans.
      request->match.request_id = NextRequestId();
      // Synchronous per connection: admission control (not this thread)
      // decides whether the request queues, degrades, or bounces.
      ServeResponse response = service_.Execute(std::move(request->match));
      return SendLine(fd, FormatResponseLine(response));
    }
  }
  return false;
}

void TcpServer::Stop() {
  stopping_.exchange(true, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Claim the connection threads under the lock, then join outside it:
  // exiting connection threads take mutex_ to drop out of live_fds_, so
  // joining while holding it would deadlock. The accept thread is already
  // joined, so nothing appends to conn_threads_ after the swap and a
  // repeated Stop() finds it empty.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mutex_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(conn_threads_);
  }
  // Threads close their own fds on the way out.
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

}  // namespace ceci
