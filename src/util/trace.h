// Phase tracing: RAII spans recording nested wall-clock timings.
//
// Instrumented code opens a span per phase; when the global tracer is
// enabled, closing the span records (name, thread, lane, depth, start,
// duration) into the tracer's buffer. Spans nest per thread, so the
// recorded events reconstruct one tree per thread — the span tree printed
// by `ceci_query --trace` and embedded in `--metrics-json` output.
//
//   {
//     TraceSpan span("build");
//     ...                      // nested TraceSpans become children
//   }                          // recorded here
//
// Disabled tracing costs one relaxed atomic load per span; no allocation,
// no locking. Recording locks a mutex once per span close — spans mark
// phases (a handful per query), never per-candidate work.
//
// Lanes: `thread` is a dense physical-thread ordinal, reset each epoch,
// but pool workers are recreated per query, so physical ordinals do not
// identify *logical* workers across queries. A TraceLane pins the current
// thread's spans to a stable logical lane (worker id, simulated machine
// id) for the duration of a scope; Chrome-trace export groups rows by
// lane, so worker timelines line up across repeated queries.
#ifndef CECI_UTIL_TRACE_H_
#define CECI_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace ceci {

class JsonWriter;

/// One closed span. `thread` is a dense ordinal assigned in order of first
/// span on each thread within the current epoch; `lane` is the logical
/// timeline (defaults to `thread`, overridden by TraceLane); `depth` is
/// the nesting level on that thread.
struct TraceEvent {
  std::string name;
  std::uint32_t thread = 0;
  std::uint32_t lane = 0;
  std::uint32_t depth = 0;
  double start_seconds = 0.0;     // since Enable()/Clear()
  double duration_seconds = 0.0;
  /// Request correlation tag pinned by TraceTag (serving: the request id
  /// generated at accept time). Empty outside a tagged scope.
  std::string tag;
};

class Tracer {
 public:
  /// The process-wide tracer used by all CECI instrumentation.
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts collecting; resets the epoch and clears prior events.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops recorded events, restarts the clock epoch, and restarts dense
  /// thread-ordinal assignment, so back-to-back traced queries in one
  /// process each see ordinals from t0 and times from 0.
  void Clear();

  /// Closed spans, ordered by (thread, start). Spans still open are absent.
  std::vector<TraceEvent> Events() const;

  /// Renders the span tree, one indented line per span:
  ///   [t0] match                    3.213ms
  ///   [t0]   preprocess             0.041ms
  ///   ...
  std::string FormatTree() const;

  /// Appends Events() as a JSON array value (caller positions the writer).
  void AppendJson(JsonWriter* writer) const;

  /// Renders Events() as a complete Chrome trace-event JSON document
  /// (load in Perfetto / chrome://tracing). Each span becomes a complete
  /// event (ph:"X") on pid 0 with tid = lane; lanes get thread_name
  /// metadata ("main" for lane 0, "lane<k>" otherwise).
  std::string ChromeTraceJson() const;

 private:
  friend class TraceSpan;
  void Record(TraceEvent event);
  double Now() const;  // seconds since epoch_
  /// Dense per-epoch ordinal of the calling thread.
  std::uint32_t ThreadOrdinal();

  // enabled_/epoch_ns_ and the ordinal counters below are read on the
  // disabled-span fast path and by Now(); they stay lock-free atomics.
  // Only the recorded-event buffer needs the mutex.
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ CECI_GUARDED_BY(mutex_);
  std::atomic<std::int64_t> epoch_ns_{0};
  // Thread ordinals are cached per thread, keyed by generation; Clear()
  // bumps the generation so every thread re-registers densely from 0.
  std::atomic<std::uint32_t> ordinal_generation_{1};
  std::atomic<std::uint32_t> next_ordinal_{0};
};

/// RAII phase span against Tracer::Global(). Not copyable or movable; bind
/// it to a scope. The name is copied only when tracing is enabled, so
/// dynamic names (e.g. "build/u3") cost nothing in the disabled case —
/// build them lazily via the callable overload.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  /// `make_name` is invoked only when tracing is enabled.
  template <typename F,
            typename = decltype(std::string(std::declval<F>()()))>
  explicit TraceSpan(F&& make_name) {
    Begin([&]() -> std::string { return make_name(); });
  }
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSpan() = default;
  void Begin(const std::function<std::string()>& make_name);

  std::string name_;
  double start_ = 0.0;
  bool active_ = false;
};

/// Pins the calling thread's spans to logical lane `lane` for the
/// lifetime of the object (restores the previous lane on destruction).
/// Construct it BEFORE any TraceSpan whose close should carry the lane —
/// destruction order closes the span while the lane is still pinned.
/// Costs two thread_local writes; safe to use whether or not tracing is
/// enabled.
class TraceLane {
 public:
  explicit TraceLane(std::uint32_t lane);
  ~TraceLane();

  TraceLane(const TraceLane&) = delete;
  TraceLane& operator=(const TraceLane&) = delete;

 private:
  std::uint32_t saved_lane_ = 0;
  bool saved_set_ = false;
};

/// Pins a correlation tag (request id) onto every span the calling thread
/// closes while the object lives; restores the previous tag on
/// destruction. The serving layer opens one per session so trace events
/// and profiler output can be joined back to the access-log record with
/// the same id (docs/observability.md#request-scoped-tracing). Like
/// TraceLane, construct it BEFORE the spans it should tag, and note the
/// tag does not follow work handed to shared pool threads — it is
/// per-thread state, so pool workers' spans stay untagged.
class TraceTag {
 public:
  explicit TraceTag(std::string_view tag);
  ~TraceTag();

  TraceTag(const TraceTag&) = delete;
  TraceTag& operator=(const TraceTag&) = delete;

  /// The calling thread's current tag ("" when none is pinned).
  static std::string Current();

 private:
  std::string saved_tag_;
  bool saved_set_ = false;
};

}  // namespace ceci

#endif  // CECI_UTIL_TRACE_H_
