// SSE4 pairwise intersection kernels: 4-lane block compares with cyclic
// shuffles, compaction through a 16-entry byte-shuffle LUT. Compiled with
// -msse4.2 when the toolchain supports it; otherwise this TU degrades to a
// null registration and dispatch falls back to SSE-less tiers.
#include "util/intersection_kernels.h"

#if defined(__SSE4_2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace ceci {
namespace intersection_internal {
namespace {

// For each 4-bit lane mask, byte indices that compact the selected 32-bit
// lanes to the front of the vector (unused lanes zero-filled via 0x80).
struct ShuffleLut {
  alignas(16) std::uint8_t bytes[16][16];
};

constexpr ShuffleLut MakeShuffleLut() {
  ShuffleLut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) != 0) {
        for (int byte = 0; byte < 4; ++byte) {
          lut.bytes[mask][out * 4 + byte] =
              static_cast<std::uint8_t>(lane * 4 + byte);
        }
        ++out;
      }
    }
    for (; out < 4; ++out) {
      for (int byte = 0; byte < 4; ++byte) {
        lut.bytes[mask][out * 4 + byte] = 0x80;
      }
    }
  }
  return lut;
}

constexpr ShuffleLut kShuffle = MakeShuffleLut();

// All-pairs equality of one 4-lane block against another via three cyclic
// rotations; the movemask reports which lanes of `va` matched.
inline unsigned BlockMatchMask(__m128i va, __m128i vb) {
  __m128i eq = _mm_cmpeq_epi32(va, vb);
  eq = _mm_or_si128(
      eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
  eq = _mm_or_si128(
      eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
  eq = _mm_or_si128(
      eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
  return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
}

inline std::size_t EmitMatches(__m128i va, unsigned mask, std::uint32_t* out,
                               std::size_t n) {
  const __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kShuffle.bytes[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n),
                   _mm_shuffle_epi8(va, shuf));
  return n + static_cast<std::size_t>(__builtin_popcount(mask));
}

// `out` may alias `a`: the current a-block is held in a register between
// reloads, matches accumulate into `amask` and are compacted out only when
// the block advances, so writes never outrun reads (see the contract in
// intersection_kernels.h).
std::size_t IntersectSse4(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t n = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    unsigned amask = 0;
    for (;;) {
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      amask |= BlockMatchMask(va, vb);
      const std::uint32_t a_max = a[i + 3];
      const std::uint32_t b_max = b[j + 3];
      if (a_max <= b_max) {
        n = EmitMatches(va, amask, out, n);
        amask = 0;
        i += 4;
        if (i + 4 > na) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (b_max <= a_max) {
        j += 4;
        if (j + 4 > nb) break;
      }
    }
    if (amask != 0) {
      // b ran out with matches pending for the in-register block. Flush
      // them, then finish the block's unmatched lanes from a stack copy:
      // out may alias a, so a[i..i+3] can now hold compacted output.
      // Already-flushed lanes are < b[j] and are skipped by the merge.
      alignas(16) std::uint32_t tmp[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), va);
      n = EmitMatches(va, amask, out, n);
      std::size_t ti = 0;
      n = MergeScalarTail(tmp, 4, ti, b, nb, j, out, n);
      i += 4;
    }
  }
  return MergeScalarTail(a, na, i, b, nb, j, out, n);
}

std::size_t CountSse4(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t count = 0;
  if (na >= 4 && nb >= 4) {
    for (;;) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      // Per-iteration counting never double-counts: a lane that matched an
      // earlier block cannot match the current one (inputs are strictly
      // increasing).
      count += static_cast<std::size_t>(
          __builtin_popcount(BlockMatchMask(va, vb)));
      const std::uint32_t a_max = a[i + 3];
      const std::uint32_t b_max = b[j + 3];
      if (a_max <= b_max) {
        i += 4;
        if (i + 4 > na) break;
      }
      if (b_max <= a_max) {
        j += 4;
        if (j + 4 > nb) break;
      }
    }
  }
  // Lanes already counted are strictly below the unconsumed region of the
  // other side, so the scalar tail skips them.
  return count + CountScalarTail(a, na, i, b, nb, j);
}

}  // namespace

const KernelTable* GetSse4Kernels() {
  static constexpr KernelTable kTable = {&IntersectSse4, &CountSse4};
  return &kTable;
}

}  // namespace intersection_internal
}  // namespace ceci

#else  // !__SSE4_2__

namespace ceci {
namespace intersection_internal {
const KernelTable* GetSse4Kernels() { return nullptr; }
}  // namespace intersection_internal
}  // namespace ceci

#endif
