#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/json_writer.h"

namespace ceci {

namespace {

std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t ThreadOrdinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// Per-thread nesting level. Tracked even while tracing is disabled so that
// spans opened before Enable() still close with a consistent depth.
thread_local std::uint32_t t_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  // Leaked on purpose: spans may finish during static teardown.
  static Tracer* instance = new Tracer();  // lint: leaky-singleton
  return *instance;
}

double Tracer::Now() const {
  return static_cast<double>(MonotonicNanos() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-9;
}

void Tracer::Enable() {
  Clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  epoch_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.thread != b.thread) return a.thread < b.thread;
                     if (a.start_seconds != b.start_seconds) {
                       return a.start_seconds < b.start_seconds;
                     }
                     // Equal starts: the outer span opened first.
                     return a.depth < b.depth;
                   });
  return events;
}

std::string Tracer::FormatTree() const {
  std::string out;
  for (const TraceEvent& e : Events()) {
    char line[256];
    std::snprintf(line, sizeof(line), "[t%u] %*s%-*s %10.3fms\n", e.thread,
                  static_cast<int>(e.depth * 2), "",
                  std::max(2, 32 - static_cast<int>(e.depth * 2)),
                  e.name.c_str(), e.duration_seconds * 1e3);
    out += line;
  }
  return out;
}

void Tracer::AppendJson(JsonWriter* writer) const {
  writer->BeginArray();
  for (const TraceEvent& e : Events()) {
    writer->BeginObject();
    writer->KV("name", e.name);
    writer->KV("thread", static_cast<std::uint64_t>(e.thread));
    writer->KV("depth", static_cast<std::uint64_t>(e.depth));
    writer->KV("start_seconds", e.start_seconds);
    writer->KV("duration_seconds", e.duration_seconds);
    writer->EndObject();
  }
  writer->EndArray();
}

TraceSpan::TraceSpan(std::string_view name) {
  Begin([&]() -> std::string { return std::string(name); });
}

void TraceSpan::Begin(const std::function<std::string()>& make_name) {
  Tracer& tracer = Tracer::Global();
  active_ = tracer.enabled();
  if (active_) {
    name_ = make_name();
    start_ = tracer.Now();
  }
  ++t_depth;
}

TraceSpan::~TraceSpan() {
  --t_depth;
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;  // disabled mid-span: drop it
  TraceEvent event;
  event.name = std::move(name_);
  event.thread = ThreadOrdinal();
  event.depth = t_depth;
  event.start_seconds = start_;
  event.duration_seconds = tracer.Now() - start_;
  tracer.Record(std::move(event));
}

}  // namespace ceci
