#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <utility>

#include "util/json_writer.h"

namespace ceci {

namespace {

std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread nesting level. Tracked even while tracing is disabled so that
// spans opened before Enable() still close with a consistent depth.
thread_local std::uint32_t t_depth = 0;

// Per-thread cached (generation, ordinal) pair; re-registered against the
// tracer whenever Clear() bumps the generation. Generation 0 never
// matches, so a fresh thread always registers on first use.
thread_local std::uint32_t t_ordinal_generation = 0;
thread_local std::uint32_t t_ordinal = 0;

// Logical lane pinned by TraceLane; when unset, events fall back to the
// physical thread ordinal.
thread_local std::uint32_t t_lane = 0;
thread_local bool t_lane_set = false;

// Correlation tag pinned by TraceTag (request id in serving mode).
thread_local std::string t_tag;
thread_local bool t_tag_set = false;

}  // namespace

Tracer& Tracer::Global() {
  // Leaked on purpose: spans may finish during static teardown.
  static Tracer* instance = new Tracer();  // lint: leaky-singleton
  return *instance;
}

double Tracer::Now() const {
  return static_cast<double>(MonotonicNanos() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-9;
}

std::uint32_t Tracer::ThreadOrdinal() {
  const std::uint32_t generation =
      ordinal_generation_.load(std::memory_order_acquire);
  if (t_ordinal_generation != generation) {
    t_ordinal = next_ordinal_.fetch_add(1, std::memory_order_relaxed);
    t_ordinal_generation = generation;
  }
  return t_ordinal;
}

void Tracer::Enable() {
  Clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
  epoch_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
  // Restart dense ordinal assignment: zero the counter first so a thread
  // observing the new generation always draws from the reset counter.
  next_ordinal_.store(0, std::memory_order_relaxed);
  ordinal_generation_.fetch_add(1, std::memory_order_release);
}

void Tracer::Record(TraceEvent event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.thread != b.thread) return a.thread < b.thread;
                     if (a.start_seconds != b.start_seconds) {
                       return a.start_seconds < b.start_seconds;
                     }
                     // Equal starts: the outer span opened first.
                     return a.depth < b.depth;
                   });
  return events;
}

std::string Tracer::FormatTree() const {
  std::string out;
  for (const TraceEvent& e : Events()) {
    char line[256];
    std::snprintf(line, sizeof(line), "[t%u] %*s%-*s %10.3fms\n", e.thread,
                  static_cast<int>(e.depth * 2), "",
                  std::max(2, 32 - static_cast<int>(e.depth * 2)),
                  e.name.c_str(), e.duration_seconds * 1e3);
    out += line;
  }
  return out;
}

void Tracer::AppendJson(JsonWriter* writer) const {
  writer->BeginArray();
  for (const TraceEvent& e : Events()) {
    writer->BeginObject();
    writer->KV("name", e.name);
    writer->KV("thread", static_cast<std::uint64_t>(e.thread));
    writer->KV("lane", static_cast<std::uint64_t>(e.lane));
    writer->KV("depth", static_cast<std::uint64_t>(e.depth));
    writer->KV("start_seconds", e.start_seconds);
    writer->KV("duration_seconds", e.duration_seconds);
    if (!e.tag.empty()) writer->KV("tag", e.tag);
    writer->EndObject();
  }
  writer->EndArray();
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  JsonWriter w;
  w.BeginObject();
  w.KV("displayTimeUnit", std::string_view("ms"));
  w.Key("traceEvents");
  w.BeginArray();
  // thread_name metadata first, one per distinct lane, so viewers label
  // rows before any complete event references them.
  std::set<std::uint32_t> lanes;
  for (const TraceEvent& e : events) lanes.insert(e.lane);
  for (std::uint32_t lane : lanes) {
    w.BeginObject();
    w.KV("name", std::string_view("thread_name"));
    w.KV("ph", std::string_view("M"));
    w.KV("pid", std::uint64_t{0});
    w.KV("tid", static_cast<std::uint64_t>(lane));
    w.Key("args");
    w.BeginObject();
    if (lane == 0) {
      w.KV("name", std::string_view("main"));
    } else {
      char label[32];
      std::snprintf(label, sizeof(label), "lane%u", lane);
      w.KV("name", std::string_view(label));
    }
    w.EndObject();
    w.EndObject();
  }
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.KV("name", e.name);
    w.KV("cat", std::string_view("ceci"));
    w.KV("ph", std::string_view("X"));
    w.KV("pid", std::uint64_t{0});
    w.KV("tid", static_cast<std::uint64_t>(e.lane));
    w.KV("ts", e.start_seconds * 1e6);        // microseconds
    w.KV("dur", e.duration_seconds * 1e6);
    w.Key("args");
    w.BeginObject();
    w.KV("thread", static_cast<std::uint64_t>(e.thread));
    w.KV("depth", static_cast<std::uint64_t>(e.depth));
    if (!e.tag.empty()) w.KV("request_id", e.tag);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

TraceSpan::TraceSpan(std::string_view name) {
  Begin([&]() -> std::string { return std::string(name); });
}

void TraceSpan::Begin(const std::function<std::string()>& make_name) {
  Tracer& tracer = Tracer::Global();
  active_ = tracer.enabled();
  if (active_) {
    name_ = make_name();
    start_ = tracer.Now();
  }
  ++t_depth;
}

TraceSpan::~TraceSpan() {
  --t_depth;
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;  // disabled mid-span: drop it
  TraceEvent event;
  event.name = std::move(name_);
  event.thread = tracer.ThreadOrdinal();
  event.lane = t_lane_set ? t_lane : event.thread;
  event.depth = t_depth;
  event.start_seconds = start_;
  event.duration_seconds = tracer.Now() - start_;
  if (t_tag_set) event.tag = t_tag;
  tracer.Record(std::move(event));
}

TraceLane::TraceLane(std::uint32_t lane)
    : saved_lane_(t_lane), saved_set_(t_lane_set) {
  t_lane = lane;
  t_lane_set = true;
}

TraceLane::~TraceLane() {
  t_lane = saved_lane_;
  t_lane_set = saved_set_;
}

TraceTag::TraceTag(std::string_view tag)
    : saved_tag_(std::move(t_tag)), saved_set_(t_tag_set) {
  t_tag.assign(tag.data(), tag.size());
  t_tag_set = true;
}

TraceTag::~TraceTag() {
  t_tag = std::move(saved_tag_);
  t_tag_set = saved_set_;
}

std::string TraceTag::Current() { return t_tag_set ? t_tag : std::string(); }

}  // namespace ceci
