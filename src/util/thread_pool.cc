#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace ceci {

ThreadPool::ThreadPool(std::size_t num_threads) {
  CECI_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) cv_done_.Wait(mutex_);
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t grain,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const auto body = [next, n, grain, &fn] {
    for (;;) {
      std::size_t begin = next->fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      std::size_t end = std::min(begin + grain, n);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };
  // The caller is one of the workers; helpers cover the rest. Completion is
  // batch-local so concurrent ParallelFor calls (different queries sharing
  // this pool) never wait on each other's tasks.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  TaskGroup group(this);
  for (std::size_t t = 0; t < helpers; ++t) group.Run(body);
  body();
  group.Wait();
}

std::size_t ThreadPool::DefaultThreads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {  // serial mode: no pool to hand the task to
    task();
    return;
  }
  {
    MutexLock lock(state_->mutex);
    state_->pending.push_back(std::move(task));
  }
  // Claim ticket: whichever pool thread pops it runs the group's next
  // unstarted task. Tickets outliving the group find `pending` empty.
  pool_->Submit([state = state_] {
    std::function<void()> task;
    {
      MutexLock lock(state->mutex);
      if (state->pending.empty()) return;  // Wait() already ran it inline
      task = std::move(state->pending.front());
      state->pending.pop_front();
      ++state->running;
    }
    task();
    {
      MutexLock lock(state->mutex);
      --state->running;
    }
    state->cv.NotifyAll();
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;  // serial mode ran everything in Run()
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(state_->mutex);
      if (state_->pending.empty()) {
        while (state_->running != 0) state_->cv.Wait(state_->mutex);
        if (state_->pending.empty()) return;
        continue;  // a racing Run() added more work
      }
      task = std::move(state_->pending.front());
      state_->pending.pop_front();
      ++state_->running;
    }
    task();
    {
      MutexLock lock(state_->mutex);
      --state_->running;
    }
    state_->cv.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) cv_task_.Wait(mutex_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.NotifyAll();
    }
  }
}

}  // namespace ceci
