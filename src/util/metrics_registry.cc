#include "util/metrics_registry.h"

#include <bit>
#include <memory>

#include "util/json_writer.h"

namespace ceci {

namespace metrics_internal {

std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace metrics_internal

namespace {

// Bucket b holds values of bit width b: 0 → bucket 0, [2^(b-1), 2^b) → b.
std::size_t BucketOf(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

}  // namespace

std::uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile observation, 1-based (nearest-rank method).
  auto rank = static_cast<std::uint64_t>(p / 100.0 *
                                         static_cast<double>(count));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Tighten the top bucket's bound with the true max.
      return std::min(BucketUpperBound(b), max);
    }
  }
  return max;
}

void Histogram::Record(std::uint64_t value) {
  Shard& shard = shards_[metrics_internal::ThreadShard()];
  shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.buckets) snap.count += c;
  snap.max = max_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min;
  // Trim trailing empty buckets so serialized snapshots stay small.
  while (!snap.buckets.empty() && snap.buckets.back() == 0) {
    snap.buckets.pop_back();
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metrics outlive every static destructor
  // (worker threads may flush during teardown).
  static MetricsRegistry* instance =
      new MetricsRegistry();  // lint: leaky-singleton
  return *instance;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // make_unique cannot reach the private constructor; the registry is
    // the only factory, so the raw new is immediately owned.
    it = counters_.emplace(
                      std::string(name),
                      std::unique_ptr<Counter>(new Counter()))  // lint: private-ctor
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(
                    std::string(name),
                    std::unique_ptr<Gauge>(new Gauge()))  // lint: private-ctor
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(
                        std::string(name),
                        std::unique_ptr<Histogram>(
                            new Histogram()))  // lint: private-ctor
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

std::string MetricsRegistry::SnapshotJson() const {
  const MetricsSnapshot snap = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) w.KV(name, value);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : snap.gauges) w.KV(name, value);
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.Key(name);
    w.BeginObject();
    w.KV("count", h.count);
    w.KV("sum", h.sum);
    w.KV("min", h.min);
    w.KV("max", h.max);
    w.KV("mean", h.Mean());
    w.KV("p50", h.Percentile(50));
    w.KV("p90", h.Percentile(90));
    w.KV("p99", h.Percentile(99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace ceci
