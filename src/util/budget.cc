#include "util/budget.h"

namespace ceci {

std::string TerminationReasonName(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kLimit:
      return "limit";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kMemoryBudget:
      return "memory_budget";
    case TerminationReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

BudgetTracker::BudgetTracker(const ExecutionBudget& budget)
    : budget_(budget),
      active_(budget.active()),
      stride_(budget.check_stride > 0 ? budget.check_stride : 1),
      start_(std::chrono::steady_clock::now()) {}

double BudgetTracker::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void BudgetTracker::SetReason(TerminationReason reason) {
  int expected = 0;
  // First exhaustion wins; losers keep the original reason.
  reason_.compare_exchange_strong(
      expected, static_cast<int>(reason), std::memory_order_relaxed,
      std::memory_order_relaxed);
  exhausted_.store(true, std::memory_order_relaxed);
}

bool BudgetTracker::Poll() {
  if (!active_) return false;
  polls_.fetch_add(1, std::memory_order_relaxed);
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (budget_.token != nullptr && budget_.token->cancelled()) {
    SetReason(TerminationReason::kCancelled);
    return true;
  }
  if (budget_.deadline_seconds > 0.0 &&
      ElapsedSeconds() >= budget_.deadline_seconds) {
    SetReason(TerminationReason::kDeadline);
    return true;
  }
  return false;
}

bool BudgetTracker::ChargeBytes(std::size_t bytes) {
  if (!active_) return false;
  const std::size_t total =
      bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_.memory_budget_bytes > 0 &&
      total > budget_.memory_budget_bytes) {
    SetReason(TerminationReason::kMemoryBudget);
  }
  return Exhausted();
}

TerminationReason BudgetTracker::reason() const {
  const int r = reason_.load(std::memory_order_relaxed);
  return r == 0 ? TerminationReason::kCompleted
                : static_cast<TerminationReason>(r);
}

BudgetStats BudgetTracker::ToStats() const {
  BudgetStats stats;
  stats.active = active_;
  stats.deadline_seconds = budget_.deadline_seconds;
  stats.memory_budget_bytes = budget_.memory_budget_bytes;
  stats.charged_bytes = charged_bytes();
  stats.polls = polls();
  const TerminationReason r = reason();
  stats.deadline_exceeded = r == TerminationReason::kDeadline;
  stats.memory_exceeded = r == TerminationReason::kMemoryBudget;
  stats.cancelled = r == TerminationReason::kCancelled;
  return stats;
}

}  // namespace ceci
