#include "util/logging.h"

#include <atomic>

#include "util/sync.h"

namespace ceci {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
// Serializes whole messages onto std::cerr — an external resource, not a
// field, so there is nothing to CECI_GUARDED_BY.
Mutex g_log_mutex;  // lint: unguarded

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    MutexLock lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace ceci
