// Wall-clock timing helpers used by benches and phase accounting.
#ifndef CECI_UTIL_TIMER_H_
#define CECI_UTIL_TIMER_H_

#include <time.h>

#include <chrono>
#include <cstdint>

namespace ceci {

/// CPU time consumed by the calling thread, in seconds. Used to compute
/// simulated parallel makespans (max over workers) on machines with fewer
/// physical cores than workers — the per-worker work is disjoint, so the
/// thread CPU clock measures exactly the work a dedicated core would do.
inline double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  std::uint64_t Micros() const {
    return static_cast<std::uint64_t>(Seconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ceci

#endif  // CECI_UTIL_TIMER_H_
