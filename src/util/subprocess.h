// Child-process management for the multi-process matching runtime
// (src/dist/). This is the only translation unit allowed to call the raw
// process and socket primitives (`fork`, `execv`, `socketpair`, `waitpid`,
// `kill`) — everything else goes through these wrappers so the lint rule
// in scripts/lint.sh can keep process handling auditable in one place.
//
// A spawned child inherits one end of a SOCK_STREAM Unix-domain socketpair
// on a fixed descriptor (default 3); the parent keeps the other end. The
// pair is the child's only channel to the supervisor: closing it (or the
// child dying, including SIGKILL) delivers EOF to the survivor, which is
// the fastest failure-detection signal the supervisor has.
#ifndef CECI_UTIL_SUBPROCESS_H_
#define CECI_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "util/status.h"

namespace ceci {

struct ChildProcess {
  pid_t pid = -1;
  /// Parent end of the socketpair (close-on-exec, so later children do not
  /// inherit their siblings' channels). The caller owns it.
  int channel_fd = -1;
};

/// How a reaped child ended.
struct ChildExit {
  bool exited = false;    // normal _exit / return from main
  int exit_code = 0;      // valid when exited
  bool signaled = false;  // killed by a signal (e.g. SIGKILL)
  int term_signal = 0;    // valid when signaled
};

/// Forks and execs `binary` with `args` (argv[0] is derived from
/// `binary`), wiring the child end of a fresh socketpair onto descriptor
/// `child_fd` in the child. If the exec fails the child exits with
/// status 127; the parent sees EOF on the channel.
Result<ChildProcess> SpawnWithChannel(const std::string& binary,
                                      const std::vector<std::string>& args,
                                      int child_fd = 3);

/// Non-blocking reap (waitpid WNOHANG). Returns true when the child has
/// terminated and was collected; `out` is filled when non-null.
bool TryReapChild(pid_t pid, ChildExit* out);

/// Blocking reap. Returns the collected exit description; a child that
/// was never spawned or was already reaped yields a default ChildExit.
ChildExit WaitChild(pid_t pid);

/// Sends `signum` to the child (e.g. SIGKILL for the chaos harness, or
/// SIGTERM for a polite stop). No-op on pid <= 0.
void SignalChild(pid_t pid, int signum);

/// A connected SOCK_STREAM Unix-domain pair for in-process transport
/// tests and tools; both ends are the caller's to close (FrameChannel
/// takes ownership of an fd passed to it).
Status MakeSocketPair(int* left, int* right);

}  // namespace ceci

#endif  // CECI_UTIL_SUBPROCESS_H_
