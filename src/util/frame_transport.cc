#include "util/frame_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <thread>

#include "util/timer.h"

namespace ceci {
namespace {

constexpr std::size_t kHeaderBytes = 5;  // u32 length + u8 type

bool TransientErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK ||
         err == ENOBUFS || err == ENOMEM;
}

void BackoffSleep(double* backoff, const TransportOptions& options) {
  std::this_thread::sleep_for(std::chrono::duration<double>(*backoff));
  *backoff = std::min(*backoff * 2.0, options.max_backoff_seconds);
}

bool PollOne(int fd, short events, double timeout_seconds) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? 0
          : static_cast<int>(std::min(timeout_seconds * 1000.0, 3.6e6)) + 1;
  int r;
  do {
    r = ::poll(&p, 1, timeout_ms);
  } while (r < 0 && errno == EINTR);
  return r > 0;
}

}  // namespace

FrameChannel::FrameChannel(int fd, const TransportOptions& options)
    : fd_(fd), options_(options) {
  if (fd_ >= 0) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

FrameChannel::~FrameChannel() { Close(); }

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : fd_(other.fd_),
      options_(other.options_),
      rx_(std::move(other.rx_)),
      status_(std::move(other.status_)),
      frames_sent_(other.frames_sent_),
      frames_received_(other.frames_received_),
      bytes_sent_(other.bytes_sent_),
      bytes_received_(other.bytes_received_) {
  other.fd_ = -1;
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    options_ = other.options_;
    rx_ = std::move(other.rx_);
    status_ = std::move(other.status_);
    frames_sent_ = other.frames_sent_;
    frames_received_ = other.frames_received_;
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    other.fd_ = -1;
  }
  return *this;
}

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FrameChannel::Send(std::uint8_t type,
                          std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return Status::IoError("send on closed channel");
  if (payload.size() > options_.max_frame_bytes) {
    return Status::InvalidArgument("frame payload exceeds max_frame_bytes");
  }
  std::vector<std::uint8_t> wire;
  wire.reserve(kHeaderBytes + payload.size());
  PutU32(&wire, static_cast<std::uint32_t>(payload.size()));
  wire.push_back(type);
  wire.insert(wire.end(), payload.begin(), payload.end());

  Timer deadline;
  double backoff = options_.initial_backoff_seconds;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      backoff = options_.initial_backoff_seconds;
      continue;
    }
    const int err = n == 0 ? EIO : errno;
    if (err == EPIPE || err == ECONNRESET) {
      return Status::IoError("eof: peer closed during send");
    }
    if (!TransientErrno(err)) {
      return Status::IoError(std::string("send: ") + std::strerror(err));
    }
    if (deadline.Seconds() > options_.io_timeout_seconds) {
      return Status::IoError("send: deadline exceeded after retries");
    }
    if (err == EAGAIN || err == EWOULDBLOCK) {
      PollOne(fd_, POLLOUT, options_.io_timeout_seconds - deadline.Seconds());
    } else {
      BackoffSleep(&backoff, options_);
    }
  }
  ++frames_sent_;
  bytes_sent_ += wire.size();
  return Status::Ok();
}

bool FrameChannel::FillFromSocket() {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      rx_.insert(rx_.end(), chunk, chunk + n);
      bytes_received_ += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;  // more may be buffered
    }
    if (n == 0) {
      status_ = Status::IoError("eof: peer closed the channel");
      return false;
    }
    const int err = errno;
    if (err == EAGAIN || err == EWOULDBLOCK) return true;
    if (err == EINTR) continue;
    if (err == ECONNRESET) {
      status_ = Status::IoError("eof: connection reset");
      return false;
    }
    status_ = Status::IoError(std::string("recv: ") + std::strerror(err));
    return false;
  }
}

Result<Frame> FrameChannel::Recv(double timeout_seconds) {
  if (fd_ < 0 && rx_.size() < kHeaderBytes) {
    return status_.ok() ? Status::IoError("recv on closed channel") : status_;
  }
  Timer waited;
  for (;;) {
    // A complete frame already buffered is served even after EOF — a
    // killed worker's final results must still be credited (drain-to-EOF
    // exactly-once accounting, docs/robustness.md).
    if (rx_.size() >= kHeaderBytes) {
      std::size_t off = 0;
      std::uint32_t len = 0;
      GetU32(rx_, &off, &len);
      if (len > options_.max_frame_bytes) {
        status_ = Status::Corruption("frame length prefix exceeds limit");
        return status_;
      }
      if (rx_.size() >= kHeaderBytes + len) {
        Frame frame;
        frame.type = rx_[4];
        frame.payload.assign(rx_.begin() + kHeaderBytes,
                             rx_.begin() + kHeaderBytes + len);
        rx_.erase(rx_.begin(), rx_.begin() + kHeaderBytes + len);
        ++frames_received_;
        return frame;
      }
    }
    if (!status_.ok()) return status_;  // EOF/fatal with no full frame left
    if (fd_ < 0) return Status::IoError("recv on closed channel");

    const bool mid_frame = !rx_.empty();
    const double budget =
        mid_frame ? options_.io_timeout_seconds : timeout_seconds;
    const double left = budget - waited.Seconds();
    // Even with an expired (or zero) budget, drain whatever is already
    // readable — a zero-timeout Recv in a poll loop must still surface
    // frames the kernel has buffered.
    if (PollOne(fd_, POLLIN, left > 0.0 ? left : 0.0)) {
      FillFromSocket();  // next iteration parses or surfaces status_
      continue;
    }
    if (left > 0.0) continue;  // poll woke early; re-check the deadline
    // Distinguish "nothing arrived" (not an error) from a frame cut off
    // mid-flight (the peer stalled past the io deadline).
    if (mid_frame) {
      status_ = Status::IoError("recv: partial frame past deadline");
      return status_;
    }
    return Status::NotFound("recv timeout");
  }
}

bool FrameChannel::WaitReadable(double timeout_seconds) const {
  if (rx_.size() >= kHeaderBytes) return true;
  if (fd_ < 0) return false;
  return PollOne(fd_, POLLIN, timeout_seconds);
}

int PollReadable(std::span<const int> fds, double timeout_seconds,
                 std::vector<int>* ready) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (int fd : fds) {
    if (fd < 0) continue;
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    pfds.push_back(p);
  }
  if (pfds.empty()) return 0;
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? 0
          : static_cast<int>(std::min(timeout_seconds * 1000.0, 3.6e6)) + 1;
  int r;
  do {
    r = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (r < 0 && errno == EINTR);
  if (r <= 0) return 0;
  int count = 0;
  for (const pollfd& p : pfds) {
    if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (ready != nullptr) ready->push_back(p.fd);
      ++count;
    }
  }
  return count;
}

void PutU32(std::vector<std::uint8_t>* buf, std::uint32_t v) {
  buf->push_back(static_cast<std::uint8_t>(v));
  buf->push_back(static_cast<std::uint8_t>(v >> 8));
  buf->push_back(static_cast<std::uint8_t>(v >> 16));
  buf->push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>* buf, std::uint64_t v) {
  PutU32(buf, static_cast<std::uint32_t>(v));
  PutU32(buf, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::vector<std::uint8_t>* buf, double v) {
  PutU64(buf, std::bit_cast<std::uint64_t>(v));
}

bool GetU32(std::span<const std::uint8_t> buf, std::size_t* offset,
            std::uint32_t* v) {
  if (buf.size() < *offset + 4) return false;
  const std::uint8_t* p = buf.data() + *offset;
  *v = static_cast<std::uint32_t>(p[0]) |
       (static_cast<std::uint32_t>(p[1]) << 8) |
       (static_cast<std::uint32_t>(p[2]) << 16) |
       (static_cast<std::uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

bool GetU64(std::span<const std::uint8_t> buf, std::size_t* offset,
            std::uint64_t* v) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!GetU32(buf, offset, &lo)) return false;
  if (!GetU32(buf, offset, &hi)) return false;
  *v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

bool GetF64(std::span<const std::uint8_t> buf, std::size_t* offset,
            double* v) {
  std::uint64_t bits = 0;
  if (!GetU64(buf, offset, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

}  // namespace ceci
