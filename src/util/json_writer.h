// Minimal streaming JSON writer used by the observability layer
// (metrics snapshots, MatchStats export, trace dumps). Emits compact,
// RFC 8259-valid JSON; commas and nesting are managed by a state stack so
// callers never hand-place separators.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("embeddings"); w.Uint(42);
//   w.Key("phases"); w.BeginObject(); ... w.EndObject();
//   w.EndObject();
//   std::string json = std::move(w).Take();
#ifndef CECI_UTIL_JSON_WRITER_H_
#define CECI_UTIL_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace ceci {

class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(std::string_view name) {
    Separate();
    Quote(name);
    out_ += ':';
    just_keyed_ = true;
  }

  void String(std::string_view value) {
    Separate();
    Quote(value);
  }
  void Uint(std::uint64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Int(std::int64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }
  void Null() {
    Separate();
    out_ += "null";
  }
  /// Non-finite doubles have no JSON encoding; emitted as null.
  void Double(double value) {
    Separate();
    if (!std::isfinite(value)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out_ += buf;
  }

  // Key/value conveniences for flat objects. The const char* overload
  // exists because a string literal or char-pointer value would otherwise
  // pick the bool overload (pointer->bool is a standard conversion and
  // beats the user-defined one to string_view), silently writing `true`.
  void KV(std::string_view k, std::string_view v) { Key(k); String(v); }
  void KV(std::string_view k, const char* v) { Key(k); String(v); }
  void KV(std::string_view k, std::uint64_t v) { Key(k); Uint(v); }
  void KV(std::string_view k, std::int64_t v) { Key(k); Int(v); }
  void KV(std::string_view k, double v) { Key(k); Double(v); }
  void KV(std::string_view k, bool v) { Key(k); Bool(v); }

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void Open(char c) {
    Separate();
    out_ += c;
    need_comma_.push_back(false);
  }
  void Close(char c) {
    out_ += c;
    need_comma_.pop_back();
  }
  // Inserts the comma before a value/key when a sibling precedes it; a
  // value directly following its key never takes one.
  void Separate() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }
  void Quote(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool just_keyed_ = false;
};

}  // namespace ceci

#endif  // CECI_UTIL_JSON_WRITER_H_
