// Fixed-size worker pool used by CECI's parallel filtering and enumeration.
// Work distribution follows the paper's pull-based dynamic model (§3.6,
// §4.2): workers pull tasks from a shared queue until it drains.
#ifndef CECI_UTIL_THREAD_POOL_H_
#define CECI_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ceci {

/// A minimal fixed-size thread pool. Tasks are void() callables; Wait()
/// blocks until every submitted task has finished.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Iterations are pulled dynamically in chunks of `grain`.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t)>& fn);

  /// Number of hardware threads, at least 1.
  static std::size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace ceci

#endif  // CECI_UTIL_THREAD_POOL_H_
