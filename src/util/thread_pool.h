// Fixed-size worker pool used by CECI's parallel filtering and enumeration.
// Work distribution follows the paper's pull-based dynamic model (§3.6,
// §4.2): workers pull tasks from a shared queue until it drains.
//
// A pool may be shared by many concurrent queries (the serving layer runs
// one process-wide pool under every in-flight Match). Batch completion is
// therefore tracked per TaskGroup, never via the pool-global Wait(): a
// group's Wait() observes only its own tasks, and the waiting thread helps
// execute the group's unstarted tasks inline, so a query always makes
// progress even when every pool thread is busy with other queries' work.
#ifndef CECI_UTIL_THREAD_POOL_H_
#define CECI_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace ceci {

/// A minimal fixed-size thread pool. Tasks are void() callables; Wait()
/// blocks until every submitted task has finished.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  /// Pool-global: with multiple concurrent submitters this waits for
  /// everyone's tasks — use a TaskGroup to wait for just your own batch.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Iterations are pulled dynamically in chunks of `grain`. The calling
  /// thread participates, and completion is batch-local (TaskGroup), so
  /// concurrent ParallelFor calls from different threads never entangle.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t)>& fn);

  /// Number of hardware threads, at least 1.
  static std::size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;  // written only before workers start
  Mutex mutex_;
  CondVar cv_task_;
  CondVar cv_done_;
  std::deque<std::function<void()>> queue_ CECI_GUARDED_BY(mutex_);
  std::size_t in_flight_ CECI_GUARDED_BY(mutex_) = 0;
  bool shutdown_ CECI_GUARDED_BY(mutex_) = false;
};

/// One batch of tasks on a shared pool, with batch-local completion.
///
/// Run() enqueues the task into the group's own queue and posts a claim
/// ticket to the pool; a pool thread that picks up the ticket pops the
/// next unstarted group task (tickets for a drained group are no-ops).
/// Wait() runs unstarted tasks inline on the calling thread, then blocks
/// until the in-flight remainder finishes — so a saturated pool delays a
/// group by at most the tasks *already running*, never by queueing, and
/// two groups on one pool cannot deadlock or observe each other's tasks.
///
/// Thread-compatible: one thread drives Run()/Wait(); pool threads only
/// touch the internal state. The destructor waits for the whole batch.
class TaskGroup {
 public:
  /// `pool` may be null: tasks then run inline in Run() (serial mode),
  /// which keeps call sites free of pool/no-pool branching.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Adds one task to the batch.
  void Run(std::function<void()> task);

  /// Drains the batch: executes unstarted tasks on this thread, then waits
  /// for tasks running on pool threads. Idempotent.
  void Wait();

 private:
  struct State {
    Mutex mutex;
    CondVar cv;
    std::deque<std::function<void()>> pending CECI_GUARDED_BY(mutex);
    std::size_t running CECI_GUARDED_BY(mutex) = 0;
  };

  ThreadPool* pool_;
  // Shared with claim tickets, which may fire after the group is gone
  // (they find `pending` empty and return).
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace ceci

#endif  // CECI_UTIL_THREAD_POOL_H_
