// Sorted-set intersection kernels. Embedding enumeration in CECI replaces
// per-edge verification with intersections of sorted candidate lists (paper
// §4, Lemma 2); these kernels are the hot path.
//
// The pairwise kernels are vectorized: at first use the process selects the
// best instruction-set tier compiled in and supported by the CPU (AVX2 >
// SSE4 > scalar) and installs it in a function-pointer table; every public
// entry point below routes through it. `CECI_FORCE_SCALAR=1` in the
// environment pins the portable scalar kernels — the differential-test
// oracle — regardless of CPU support (read once, at selection time).
// Heavily skewed size ratios still take the scalar galloping path, which
// beats any linear-scan kernel there. See docs/tuning.md#intersection-kernels.
#ifndef CECI_UTIL_INTERSECTION_H_
#define CECI_UTIL_INTERSECTION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ceci {

/// out = a ∩ b. Both inputs must be sorted ascending and duplicate-free;
/// the output is too. `out` is cleared first. Uses galloping (exponential
/// search) when one side is much smaller and the dispatched
/// vectorized/merge kernel when the sizes are comparable.
void IntersectSorted(std::span<const std::uint32_t> a,
                     std::span<const std::uint32_t> b,
                     std::vector<std::uint32_t>* out);

/// In-place variant: inout = inout ∩ b.
void IntersectSortedInPlace(std::vector<std::uint32_t>* inout,
                            std::span<const std::uint32_t> b);

/// Intersection of k sorted lists, smallest-first ordering applied
/// internally. `out` is cleared first. k == 0 yields empty; k == 1 copies
/// the single list without touching any scratch.
void IntersectSortedMulti(std::span<const std::span<const std::uint32_t>> lists,
                          std::vector<std::uint32_t>* out);

/// |a ∩ b| without materializing.
std::size_t IntersectionSize(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b);

/// |∩ lists| without materializing the final result (intermediate results
/// for k >= 3 use a thread-local scratch buffer — allocation-free after
/// warmup). k == 0 yields 0; k == 1 yields lists[0].size().
std::size_t IntersectionSizeMulti(
    std::span<const std::span<const std::uint32_t>> lists);

/// Binary search membership test on a sorted list.
bool SortedContains(std::span<const std::uint32_t> sorted, std::uint32_t x);

/// Instruction-set tiers the pairwise kernels exist for.
enum class IntersectionArch { kScalar, kSse4, kAvx2 };

/// Metrics/logging name: "scalar", "sse4", or "avx2".
const char* IntersectionArchName(IntersectionArch arch);

/// The tier process-wide dispatch selected (best available unless
/// CECI_FORCE_SCALAR=1 pinned the scalar fallback). Selection happens on
/// the first intersection call or the first query of this function.
IntersectionArch ActiveIntersectionArch();

/// True when `arch`'s kernels are compiled into this binary and the CPU
/// supports them. kScalar is always available.
bool IntersectionArchAvailable(IntersectionArch arch);

/// Flushes the calling thread's batched `ceci.intersect.*` kernel counters
/// into the metrics registry. Batches also flush automatically every 4096
/// kernel calls and at thread exit; call this before snapshotting the
/// registry on a thread that ran intersections (e.g. end of a query).
void FlushIntersectionThreadStats();

/// Runs one specific tier's pairwise kernel, bypassing both dispatch and
/// the galloping heuristic. For differential tests and microbenchmarks.
/// Returns false (leaving outputs untouched beyond a clear) when the arch
/// is unavailable.
bool IntersectSortedWithArch(IntersectionArch arch,
                             std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b,
                             std::vector<std::uint32_t>* out);
bool IntersectionSizeWithArch(IntersectionArch arch,
                              std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b,
                              std::size_t* size);

}  // namespace ceci

#endif  // CECI_UTIL_INTERSECTION_H_
