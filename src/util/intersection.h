// Sorted-set intersection kernels. Embedding enumeration in CECI replaces
// per-edge verification with intersections of sorted candidate lists (paper
// §4, Lemma 2); these kernels are the hot path.
#ifndef CECI_UTIL_INTERSECTION_H_
#define CECI_UTIL_INTERSECTION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ceci {

/// out = a ∩ b. Both inputs must be sorted ascending and duplicate-free;
/// the output is too. `out` is cleared first. Uses a merge scan when the
/// sizes are comparable and galloping (exponential search) when one side is
/// much smaller.
void IntersectSorted(std::span<const std::uint32_t> a,
                     std::span<const std::uint32_t> b,
                     std::vector<std::uint32_t>* out);

/// In-place variant: inout = inout ∩ b.
void IntersectSortedInPlace(std::vector<std::uint32_t>* inout,
                            std::span<const std::uint32_t> b);

/// Intersection of k sorted lists (k >= 1), smallest-first ordering applied
/// internally. `out` is cleared first.
void IntersectSortedMulti(std::span<const std::span<const std::uint32_t>> lists,
                          std::vector<std::uint32_t>* out);

/// |a ∩ b| without materializing.
std::size_t IntersectionSize(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b);

/// Binary search membership test on a sorted list.
bool SortedContains(std::span<const std::uint32_t> sorted, std::uint32_t x);

}  // namespace ceci

#endif  // CECI_UTIL_INTERSECTION_H_
