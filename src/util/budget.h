// Execution budgets for bounded matching (resilient execution layer).
//
// An ExecutionBudget caps a single Match() call by wall-clock deadline,
// by bytes of CECI index + enumeration state, and/or by an external
// CancellationToken. The budget is enforced *cooperatively*: the builder
// polls between frontier chunks, refinement between per-vertex passes,
// and the enumerator every `check_stride` recursive calls — the same
// discipline as the cross-worker abort flag, so a tripped budget stops
// every worker within one stride. Hot paths only read one relaxed atomic
// flag; the clock and token are touched on the poll stride.
//
// The first condition observed wins and is reported as the
// TerminationReason on MatchResult, so partial results are labelled
// honestly instead of silently looking complete. See docs/robustness.md.
#ifndef CECI_UTIL_BUDGET_H_
#define CECI_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ceci {

/// Why a Match() call returned. Anything but kCompleted means the
/// embedding count is a lower bound over the explored portion.
enum class TerminationReason {
  kCompleted = 0,   // full enumeration (or proven-infeasible query)
  kLimit,           // MatchOptions::limit embeddings emitted
  kDeadline,        // ExecutionBudget::deadline_seconds elapsed
  kMemoryBudget,    // ExecutionBudget::memory_budget_bytes exceeded
  kCancelled,       // token cancelled, or a visitor returned false
};

/// Stable lower_snake name ("completed", "deadline", ...) used by the
/// stats JSON, the CLI, and the auditor.
std::string TerminationReasonName(TerminationReason reason);

/// External cancellation handle. The requesting side (another thread, a
/// signal handler shim, a serving frontend) calls RequestCancel(); every
/// worker observes it at the next poll. Reusable only per logical query:
/// once cancelled it stays cancelled.
class CancellationToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query resource caps. Default-constructed = unbounded (no overhead:
/// an inactive budget installs no tracker and no polling).
struct ExecutionBudget {
  /// Wall-clock deadline for the whole Match() call; 0 = none.
  double deadline_seconds = 0.0;
  /// Byte cap covering the CECI index (charged incrementally per built
  /// vertex via CeciIndex::MemoryFootprint), the work-unit pool, and
  /// per-worker enumeration state; 0 = none.
  std::size_t memory_budget_bytes = 0;
  /// External cancellation; null = none. Must outlive the Match() call.
  const CancellationToken* token = nullptr;
  /// Recursive calls between deadline/token polls per enumeration worker.
  /// The deadline is therefore observed within one stride of backtracking
  /// steps (builder/refinement poll at their own per-chunk granularity).
  std::uint64_t check_stride = 4096;

  bool active() const {
    return deadline_seconds > 0.0 || memory_budget_bytes > 0 ||
           token != nullptr;
  }
};

/// Budget outcome mirrored into MatchStats. `cancelled` also covers a
/// visitor returning false (both surface as kCancelled).
struct BudgetStats {
  bool active = false;
  double deadline_seconds = 0.0;
  std::size_t memory_budget_bytes = 0;
  /// Bytes charged against the budget (monotone; the peak equals the
  /// total because nothing is ever uncharged within one query).
  std::size_t charged_bytes = 0;
  /// Deadline/token polls actually performed across all phases/workers.
  std::uint64_t polls = 0;
  bool deadline_exceeded = false;
  bool memory_exceeded = false;
  bool cancelled = false;
};

/// Shared, thread-safe enforcement state for one Match() call. Writers
/// race benignly: the first exhaustion reason recorded wins; everything
/// else is monotone counters.
class BudgetTracker {
 public:
  explicit BudgetTracker(const ExecutionBudget& budget);

  /// False for a default ExecutionBudget: callers skip all polling.
  bool active() const { return active_; }

  /// One relaxed load — safe on any hot path.
  bool Exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// Checks the cancellation token and the wall clock. Returns
  /// Exhausted() so call sites can `if (tracker->Poll()) break;`.
  bool Poll();

  /// Adds `bytes` to the tracked footprint and trips the memory budget
  /// when the total exceeds it. Returns Exhausted().
  bool ChargeBytes(std::size_t bytes);

  /// kCompleted while nothing tripped; otherwise the first reason seen.
  TerminationReason reason() const;

  std::size_t charged_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t polls() const {
    return polls_.load(std::memory_order_relaxed);
  }
  std::uint64_t stride() const { return stride_; }
  double ElapsedSeconds() const;

  BudgetStats ToStats() const;

 private:
  void SetReason(TerminationReason reason);

  // Lock-free by design: the tracker sits on every enumeration worker's
  // poll stride, so it deliberately holds NO Mutex and NO CECI_GUARDED_BY
  // fields. Its concurrency contract is carried entirely by the atomics
  // below:
  //   - budget_/active_/stride_/start_ are written once in the
  //     constructor and read-only afterwards (safe to share unannotated);
  //   - reason_ is decided by a first-wins CAS (SetReason): the worker
  //     whose compare_exchange from 0 succeeds owns the TerminationReason,
  //     later trippers keep it intact;
  //   - exhausted_ is a monotone false->true flag stored after the CAS;
  //     both are relaxed, so workers treat it only as a stop hint —
  //     reason() is authoritative once workers are joined (the join is
  //     the synchronization point);
  //   - bytes_/polls_ are monotone relaxed counters (statistics only).
  // Capability analysis intentionally has nothing to check here; TSan
  // covers this class through the concurrent serving tests.
  ExecutionBudget budget_;
  bool active_ = false;
  std::uint64_t stride_ = 4096;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> exhausted_{false};
  std::atomic<int> reason_{0};  // 0 = none; else int(TerminationReason)
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> polls_{0};
};

}  // namespace ceci

#endif  // CECI_UTIL_BUDGET_H_
