// Minimal recursive-descent JSON parser (RFC 8259 subset) for tooling
// that consumes the JSON this codebase emits: `ceci_top` polling /varz,
// scripts reading metrics snapshots, tests round-tripping JsonWriter
// output. Numbers are held as double (plus the raw text for exact
// integer reads); objects preserve no duplicate keys (last wins).
//
//   auto doc = ParseJson(R"({"qps": 12.5, "windows": {"10s": {...}}})");
//   if (doc.ok()) double qps = doc->Get("qps")->AsDouble();
//
// Not a streaming parser and not hardened against adversarial input
// beyond depth/size limits — both sides of the exchange are this
// project's own tools.
#ifndef CECI_UTIL_JSON_PARSER_H_
#define CECI_UTIL_JSON_PARSER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ceci {

/// One parsed JSON value. A tagged union kept deliberately simple: the
/// containers are plain std types so callers can iterate directly.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  // original text, for exact u64 reads
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(std::string_view key) const;
  /// Dotted-path convenience: Find("windows.10s.qps").
  const JsonValue* Find(std::string_view dotted_path) const;

  /// Coercions return the fallback when the value has the wrong kind.
  double AsDouble(double fallback = 0.0) const;
  std::uint64_t AsUint(std::uint64_t fallback = 0) const;
  std::int64_t AsInt(std::int64_t fallback = 0) const;
  bool AsBool(bool fallback = false) const;
  const std::string& AsString() const;  // "" for non-strings
};

/// Parses one JSON document (leading/trailing whitespace tolerated;
/// trailing garbage is an error). Fails with kInvalidArgument naming the
/// byte offset of the first problem.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace ceci

#endif  // CECI_UTIL_JSON_PARSER_H_
