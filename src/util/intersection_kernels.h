// Internal contract between the intersection dispatch layer
// (intersection.cc) and the per-ISA kernel translation units
// (intersection_sse4.cc, intersection_avx2.cc). Not part of the public API;
// include util/intersection.h instead.
//
// Kernel contract: inputs are sorted ascending and duplicate-free. `out`
// must either (a) provide room for min(na, nb) + kKernelPad elements — the
// vectorized kernels store whole 4/8-lane compacted blocks, so the final
// store may touch up to kKernelPad - 1 slots past the returned length — or
// (b) alias `a` exactly (in-place refinement): every kernel guarantees its
// writes trail its reads of `a`, so `a`'s own storage is always large
// enough.
#ifndef CECI_UTIL_INTERSECTION_KERNELS_H_
#define CECI_UTIL_INTERSECTION_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace ceci {
namespace intersection_internal {

inline constexpr std::size_t kKernelPad = 8;

using IntersectFn = std::size_t (*)(const std::uint32_t* a, std::size_t na,
                                    const std::uint32_t* b, std::size_t nb,
                                    std::uint32_t* out);
using CountFn = std::size_t (*)(const std::uint32_t* a, std::size_t na,
                                const std::uint32_t* b, std::size_t nb);

struct KernelTable {
  IntersectFn intersect;
  CountFn count;
};

/// Defined in intersection_sse4.cc / intersection_avx2.cc. Returns null
/// when the TU was built without the ISA (non-x86 target, or the compiler
/// rejected the arch flag); the caller must additionally verify runtime CPU
/// support before installing a table.
const KernelTable* GetSse4Kernels();
const KernelTable* GetAvx2Kernels();

/// Portable merge kernels (the dispatch fallback and the oracle in
/// differential tests). Defined in intersection.cc.
std::size_t IntersectMergeScalar(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out);
std::size_t CountMergeScalar(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb);

/// Scalar merge continuation used by the vectorized kernels for their
/// tails: resumes at (i, j), appends matches at out[n..], returns the new
/// output length and leaves i/j at the stopping positions. Skips (without
/// re-emitting) any a[i'] that already matched some b element before
/// position j, because such values are strictly below b[j].
inline std::size_t MergeScalarTail(const std::uint32_t* a, std::size_t na,
                                   std::size_t& i, const std::uint32_t* b,
                                   std::size_t nb, std::size_t& j,
                                   std::uint32_t* out, std::size_t n) {
  while (i < na && j < nb) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (x > y) {
      ++j;
    } else {
      out[n++] = x;
      ++i;
      ++j;
    }
  }
  return n;
}

/// Counting twin of MergeScalarTail.
inline std::size_t CountScalarTail(const std::uint32_t* a, std::size_t na,
                                   std::size_t i, const std::uint32_t* b,
                                   std::size_t nb, std::size_t j) {
  std::size_t count = 0;
  while (i < na && j < nb) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (x > y) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace intersection_internal
}  // namespace ceci

#endif  // CECI_UTIL_INTERSECTION_KERNELS_H_
