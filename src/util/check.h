// Debug-assertion tier: CECI_DCHECK and friends.
//
// CECI_CHECK (util/logging.h) is always on and guards conditions whose
// violation corrupts results or memory no matter the build type. The
// CECI_DCHECK tier below documents and enforces the *structural* invariants
// of the hot paths — sorted candidate lists, parent-before-child matching
// order, injectivity-bitset consistency — whose per-element verification is
// too expensive for release binaries.
//
// DCHECKs compile to nothing unless CECI_ENABLE_DCHECKS is defined
// (CMake: -DCECI_ENABLE_DCHECKS=ON, implied by Debug builds and by every
// sanitizer preset in CMakePresets.json). When enabled, a failing DCHECK is
// fatal and prints file:line plus the stringified condition, exactly like
// CECI_CHECK. When disabled, the condition is parsed but never evaluated,
// so it cannot hide side effects and costs zero cycles.
//
// See docs/static_analysis.md for the policy on choosing CHECK vs DCHECK.
#ifndef CECI_UTIL_CHECK_H_
#define CECI_UTIL_CHECK_H_

#include "util/logging.h"

#ifdef CECI_ENABLE_DCHECKS
#define CECI_DCHECK(condition) CECI_CHECK(condition)
#else
// `while (false)` keeps the condition and any streamed message
// type-checked (no -Wunused warnings, no bit-rot) without evaluating them.
#define CECI_DCHECK(condition) \
  while (false) CECI_CHECK(condition)
#endif

#define CECI_DCHECK_EQ(a, b) CECI_DCHECK((a) == (b))
#define CECI_DCHECK_NE(a, b) CECI_DCHECK((a) != (b))
#define CECI_DCHECK_LT(a, b) CECI_DCHECK((a) < (b))
#define CECI_DCHECK_LE(a, b) CECI_DCHECK((a) <= (b))
#define CECI_DCHECK_GT(a, b) CECI_DCHECK((a) > (b))
#define CECI_DCHECK_GE(a, b) CECI_DCHECK((a) >= (b))

namespace ceci {

/// True when CECI_DCHECK assertions are compiled into this binary; lets
/// tests and tools report which tier they actually exercised.
constexpr bool DchecksEnabled() {
#ifdef CECI_ENABLE_DCHECKS
  return true;
#else
  return false;
#endif
}

}  // namespace ceci

#endif  // CECI_UTIL_CHECK_H_
