// AVX2 pairwise intersection kernels: 8-lane block compares via
// all-rotations of the b block (seven independent lane permutes), match
// compaction through a 256-entry permute-index LUT. Compiled with -mavx2
// when the toolchain supports it; otherwise degrades to a null registration
// and dispatch falls back to SSE4 or scalar.
#include "util/intersection_kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace ceci {
namespace intersection_internal {
namespace {

// For each 8-bit lane mask, permute indices that compact the selected
// 32-bit lanes to the front (for _mm256_permutevar8x32_epi32).
struct PermLut {
  alignas(32) std::int32_t idx[256][8];
};

constexpr PermLut MakePermLut() {
  PermLut lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask & (1 << lane)) != 0) lut.idx[mask][out++] = lane;
    }
    for (; out < 8; ++out) lut.idx[mask][out] = 0;
  }
  return lut;
}

constexpr PermLut kPerm = MakePermLut();

// All-pairs equality of two 8-lane blocks: compare va against vb and its
// seven rotations (independent permutes, so they pipeline rather than
// chain). The movemask reports which lanes of `va` matched.
inline unsigned BlockMatchMask(__m256i va, __m256i vb) {
  const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i r2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i r3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i r4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i r5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  const __m256i r6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  const __m256i r7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  __m256i eq = _mm256_cmpeq_epi32(va, vb);
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r1)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r2)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r3)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r4)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r5)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r6)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r7)));
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

inline std::size_t EmitMatches(__m256i va, unsigned mask, std::uint32_t* out,
                               std::size_t n) {
  const __m256i perm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kPerm.idx[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + n),
                      _mm256_permutevar8x32_epi32(va, perm));
  return n + static_cast<std::size_t>(__builtin_popcount(mask));
}

// `out` may alias `a`: the current a-block is held in a register between
// reloads, matches accumulate into `amask` and are compacted out only when
// the block advances, so writes never outrun reads (see the contract in
// intersection_kernels.h).
std::size_t IntersectAvx2(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t n = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    unsigned amask = 0;
    for (;;) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      amask |= BlockMatchMask(va, vb);
      const std::uint32_t a_max = a[i + 7];
      const std::uint32_t b_max = b[j + 7];
      if (a_max <= b_max) {
        n = EmitMatches(va, amask, out, n);
        amask = 0;
        i += 8;
        if (i + 8 > na) break;
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (b_max <= a_max) {
        j += 8;
        if (j + 8 > nb) break;
      }
    }
    if (amask != 0) {
      // b ran out with matches pending for the in-register block. Flush
      // them, then finish the block's unmatched lanes from a stack copy:
      // out may alias a, so a[i..i+7] can now hold compacted output.
      // Already-flushed lanes are < b[j] and are skipped by the merge.
      alignas(32) std::uint32_t tmp[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), va);
      n = EmitMatches(va, amask, out, n);
      std::size_t ti = 0;
      n = MergeScalarTail(tmp, 8, ti, b, nb, j, out, n);
      i += 8;
    }
  }
  return MergeScalarTail(a, na, i, b, nb, j, out, n);
}

std::size_t CountAvx2(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t count = 0;
  if (na >= 8 && nb >= 8) {
    for (;;) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      // Per-iteration counting never double-counts: a lane that matched an
      // earlier block cannot match the current one (inputs are strictly
      // increasing).
      count += static_cast<std::size_t>(
          __builtin_popcount(BlockMatchMask(va, vb)));
      const std::uint32_t a_max = a[i + 7];
      const std::uint32_t b_max = b[j + 7];
      if (a_max <= b_max) {
        i += 8;
        if (i + 8 > na) break;
      }
      if (b_max <= a_max) {
        j += 8;
        if (j + 8 > nb) break;
      }
    }
  }
  // Lanes already counted are strictly below the unconsumed region of the
  // other side, so the scalar tail skips them.
  return count + CountScalarTail(a, na, i, b, nb, j);
}

}  // namespace

const KernelTable* GetAvx2Kernels() {
  static constexpr KernelTable kTable = {&IntersectAvx2, &CountAvx2};
  return &kTable;
}

}  // namespace intersection_internal
}  // namespace ceci

#else  // !__AVX2__

namespace ceci {
namespace intersection_internal {
const KernelTable* GetAvx2Kernels() { return nullptr; }
}  // namespace intersection_internal
}  // namespace ceci

#endif
