#include "util/crc32.h"

#include <array>

namespace ceci {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? kPolynomial ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ceci
