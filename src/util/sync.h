// Capability-annotated synchronization primitives.
//
// Every mutex-owning class in src/ locks through these wrappers instead of
// the raw std primitives, so Clang's `-Wthread-safety` capability analysis
// can prove the lock discipline at compile time on every `analyze` build
// (docs/static_analysis.md#capability-analysis):
//
//   class Account {
//    public:
//     void Deposit(int amount) {
//       MutexLock lock(mutex_);
//       balance_ += amount;
//     }
//    private:
//     Mutex mutex_;
//     int balance_ CECI_GUARDED_BY(mutex_) = 0;
//   };
//
// Reading or writing `balance_` without holding `mutex_` is then a
// compile error under `cmake --preset analyze`, not a latent data race
// waiting for TSan to catch the right interleaving at runtime.
//
// The macro family expands to the full Clang thread-safety attributes
// under Clang and to nothing elsewhere (gcc builds are unaffected).
// Lambdas are analyzed as separate functions that hold no capabilities,
// so condition-variable waits use explicit loops at the call site
// (`while (!ready_) cv_.Wait(mutex_);`) rather than predicate lambdas —
// the loop body is then checked in the caller's context where the lock
// is visibly held.
#ifndef CECI_UTIL_SYNC_H_
#define CECI_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>  // lint: raw-mutex (wrapped here, once)
#include <mutex>               // lint: raw-mutex (wrapped here, once)

// Attribute spelling. Clang has shipped these attributes since 3.5;
// everything else sees empty expansions, so annotated code stays
// portable C++ under gcc (the CI default) and MSVC alike.
#if defined(__clang__) && !defined(SWIG)
#define CECI_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CECI_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

/// Declares a class to be a capability (a lockable resource).
#define CECI_CAPABILITY(x) CECI_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define CECI_SCOPED_CAPABILITY \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define CECI_GUARDED_BY(x) CECI_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer-field annotation: the pointee is guarded by `x` (the pointer
/// itself is not).
#define CECI_PT_GUARDED_BY(x) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function annotation: the caller must hold the capability on entry and
/// still holds it on exit.
#define CECI_REQUIRES(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define CECI_REQUIRES_SHARED(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability (not held on entry, held
/// on exit). On a member of a CECI_CAPABILITY class, an empty argument
/// list means `this`.
#define CECI_ACQUIRE(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define CECI_ACQUIRE_SHARED(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the capability (held on entry, released
/// on exit).
#define CECI_RELEASE(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define CECI_RELEASE_SHARED(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value
/// equals the first argument.
#define CECI_TRY_ACQUIRE(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability (guards
/// against self-deadlock on non-recursive mutexes).
#define CECI_EXCLUDES(...) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis
/// without acquiring anything).
#define CECI_ASSERT_CAPABILITY(x) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function annotation: returns a reference to the given capability.
#define CECI_RETURN_CAPABILITY(x) \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining why the discipline cannot be expressed.
#define CECI_NO_THREAD_SAFETY_ANALYSIS \
  CECI_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace ceci {

class CondVar;

/// A std::mutex the capability analysis can see. Prefer MutexLock over
/// calling Lock()/Unlock() directly — manual pairs are easy to get past
/// the analysis reviewer and hard to get past exceptions.
class CECI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CECI_ACQUIRE() { mutex_.lock(); }
  void Unlock() CECI_RELEASE() { mutex_.unlock(); }
  bool TryLock() CECI_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII scoped lock over a Mutex (the annotated std::lock_guard).
class CECI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CECI_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() CECI_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over a Mutex. Wait() releases and reacquires the
/// caller's lock internally, so from the analysis' point of view the
/// capability is held across the call — which is exactly the contract
/// the caller's re-checked loop condition relies on:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(mutex_);   // ready_ is GUARDED_BY(mutex_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible: always re-check
  /// the condition in a loop). The caller must hold `mutex`.
  void Wait(Mutex& mutex) CECI_REQUIRES(mutex) {
    // Adopt the already-held mutex for the wait, then release ownership
    // back to the caller's MutexLock so it is not unlocked twice.
    std::unique_lock<std::mutex> lock(mutex.mutex_,  // lint: raw-mutex
                                      std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until notified or `seconds` elapsed, whichever comes first.
  /// Returns true when notified (or spuriously woken), false on timeout;
  /// either way the caller still holds `mutex` and must re-check its
  /// condition in a loop. Used by periodic background work (the windowed
  /// metrics sampler) that must wake promptly on shutdown.
  bool WaitFor(Mutex& mutex, double seconds) CECI_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_,  // lint: raw-mutex
                                      std::adopt_lock);
    const auto status = cv_.wait_for(lock, std::chrono::duration<double>(
                                               seconds < 0.0 ? 0.0 : seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ceci

#endif  // CECI_UTIL_SYNC_H_
