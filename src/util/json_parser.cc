#include "util/json_parser.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace ceci {
namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CECI_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, std::size_t depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      CECI_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      CECI_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object[std::move(key)] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, std::size_t depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      CECI_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // reassembled — this project never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected a value");
    out->kind = JsonValue::Kind::kNumber;
    out->raw_number.assign(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    out->number = std::strtod(out->raw_number.c_str(), &end);
    if (end != out->raw_number.c_str() + out->raw_number.size()) {
      return Error("malformed number");
    }
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::Find(std::string_view dotted_path) const {
  const JsonValue* node = this;
  while (!dotted_path.empty() && node != nullptr) {
    const std::size_t dot = dotted_path.find('.');
    const std::string_view head = dotted_path.substr(0, dot);
    node = node->Get(head);
    if (dot == std::string_view::npos) break;
    dotted_path.remove_prefix(dot + 1);
  }
  return node;
}

double JsonValue::AsDouble(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

std::uint64_t JsonValue::AsUint(std::uint64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  // Prefer the raw text: doubles lose integers above 2^53.
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw_number.c_str(), &end, 10);
  if (end == raw_number.c_str() + raw_number.size()) return v;
  return number < 0 ? fallback : static_cast<std::uint64_t>(number);
}

std::int64_t JsonValue::AsInt(std::int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw_number.c_str(), &end, 10);
  if (end == raw_number.c_str() + raw_number.size()) return v;
  return static_cast<std::int64_t>(number);
}

bool JsonValue::AsBool(bool fallback) const {
  return kind == Kind::kBool ? boolean : fallback;
}

const std::string& JsonValue::AsString() const {
  static const std::string kEmpty;  // lint: leaky-singleton
  return kind == Kind::kString ? string : kEmpty;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace ceci
