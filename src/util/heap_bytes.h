// Honest heap measurement for container allocations.
//
// MemoryBytes()-style estimates count payload only; the allocator actually
// hands out capacity-sized blocks rounded up to bin sizes. When comparing a
// pointer-rich layout against a single contiguous arena, the fair pointer
// figure is what the allocator charges, not what the payload sums to. On
// glibc we ask malloc_usable_size; elsewhere we fall back to capacity.
#ifndef CECI_UTIL_HEAP_BYTES_H_
#define CECI_UTIL_HEAP_BYTES_H_

#include <cstddef>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace ceci {

/// Bytes the allocator charges for one heap block, or `fallback` when the
/// platform cannot tell us (non-glibc).
inline std::size_t MeasuredBlockBytes(const void* block, std::size_t fallback) {
  if (block == nullptr) return 0;
#if defined(__GLIBC__)
  return malloc_usable_size(const_cast<void*>(block));
#else
  return fallback;
#endif
}

/// Heap bytes held by a vector's backing allocation (zero if it never
/// allocated). Excludes the vector header itself — callers add
/// sizeof(std::vector<T>) when the header lives on the heap too.
template <typename T>
std::size_t MeasuredVectorBytes(const std::vector<T>& v) {
  return MeasuredBlockBytes(v.data(), v.capacity() * sizeof(T));
}

}  // namespace ceci

#endif  // CECI_UTIL_HEAP_BYTES_H_
