#include "util/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ceci {

MappedFile::~MappedFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      open_(std::exchange(other.open_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    open_ = std::exchange(other.open_, false);
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  MappedFile file;
  file.open_ = true;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* base =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file.base_ = base;
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
}

}  // namespace ceci
