#include "util/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ceci {

Result<ChildProcess> SpawnWithChannel(const std::string& binary,
                                      const std::vector<std::string>& args,
                                      int child_fd) {
  if (child_fd < 0) {
    return Status::InvalidArgument("child_fd must be non-negative");
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  const int parent_end = fds[0];
  const int child_end = fds[1];
  // The parent end must not leak into later-spawned siblings: a sibling
  // holding a copy would keep the channel open after this child dies,
  // suppressing the EOF the supervisor relies on for failure detection.
  ::fcntl(parent_end, F_SETFD, FD_CLOEXEC);

  std::vector<std::string> argv_storage;
  argv_storage.reserve(args.size() + 1);
  argv_storage.push_back(binary);
  for (const std::string& a : args) argv_storage.push_back(a);

  const pid_t pid = ::fork();
  if (pid < 0) {
    Status status = Status::IoError(std::string("fork: ") +
                                    std::strerror(errno));
    ::close(parent_end);
    ::close(child_end);
    return status;
  }
  if (pid == 0) {
    // Child. Move the channel onto the agreed descriptor and exec. Only
    // async-signal-safe calls between fork and exec.
    ::close(parent_end);
    if (child_end != child_fd) {
      if (::dup2(child_end, child_fd) < 0) _exit(127);
      ::close(child_end);
    } else {
      // Clear any close-on-exec bit so the descriptor survives the exec.
      ::fcntl(child_fd, F_SETFD, 0);
    }
    std::vector<char*> argv;
    argv.reserve(argv_storage.size() + 1);
    for (std::string& a : argv_storage) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees EOF on the channel
  }
  ::close(child_end);
  ChildProcess child;
  child.pid = pid;
  child.channel_fd = parent_end;
  return child;
}

namespace {

ChildExit DecodeWaitStatus(int wstatus) {
  ChildExit out;
  if (WIFEXITED(wstatus)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(wstatus);
  }
  return out;
}

}  // namespace

bool TryReapChild(pid_t pid, ChildExit* out) {
  if (pid <= 0) return false;
  int wstatus = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &wstatus, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r != pid) return false;
  if (out != nullptr) *out = DecodeWaitStatus(wstatus);
  return true;
}

ChildExit WaitChild(pid_t pid) {
  ChildExit out;
  if (pid <= 0) return out;
  int wstatus = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &wstatus, 0);
  } while (r < 0 && errno == EINTR);
  if (r == pid) out = DecodeWaitStatus(wstatus);
  return out;
}

void SignalChild(pid_t pid, int signum) {
  if (pid <= 0) return;
  ::kill(pid, signum);
}

Status MakeSocketPair(int* left, int* right) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  *left = fds[0];
  *right = fds[1];
  return Status::Ok();
}

}  // namespace ceci
