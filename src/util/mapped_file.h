// Read-only memory-mapped file (RAII).
//
// Backs `ceci_serve --index`: a prebuilt flat CECI image is mapped
// PROT_READ / MAP_SHARED, so every connection — and every *process*
// serving the same file — shares one physical copy through the page
// cache. The mapping is immutable for its whole lifetime; concurrent
// readers need no synchronization.
#ifndef CECI_UTIL_MAPPED_FILE_H_
#define CECI_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace ceci {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Fails with kIoError when the file cannot be
  /// opened or mapped; an empty file maps successfully with size() == 0.
  static Result<MappedFile> Open(const std::string& path);

  bool valid() const { return base_ != nullptr || size_ == 0; }
  const std::byte* data() const {
    return static_cast<const std::byte*>(base_);
  }
  std::size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;  // distinguishes default-constructed from empty file
};

}  // namespace ceci

#endif  // CECI_UTIL_MAPPED_FILE_H_
