#include "util/intersection.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"
#include "util/intersection_kernels.h"
#include "util/metrics_registry.h"

namespace ceci {
namespace {

using intersection_internal::CountMergeScalar;
using intersection_internal::CountScalarTail;
using intersection_internal::GetAvx2Kernels;
using intersection_internal::GetSse4Kernels;
using intersection_internal::IntersectMergeScalar;
using intersection_internal::kKernelPad;
using intersection_internal::KernelTable;
using intersection_internal::MergeScalarTail;

// One side much smaller: for each element of the small side, gallop in the
// large side. Threshold chosen empirically; a factor of 32 keeps the
// linear-scan kernels for near-equal sizes.
constexpr std::size_t kGallopFactor = 32;

// Finds the first index i >= lo with hay[i] >= needle using exponential
// probing followed by binary search.
std::size_t GallopLowerBound(const std::uint32_t* hay, std::size_t size,
                             std::size_t lo, std::uint32_t needle) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < size && hay[hi] < needle) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, size);
  return static_cast<std::size_t>(
      std::lower_bound(hay + lo, hay + hi, needle) - hay);
}

// Galloping intersect; `out` may alias either input (writes trail reads of
// both sides: the output index never exceeds the small side's cursor nor
// the large side's search floor).
std::size_t IntersectGallopRaw(const std::uint32_t* small, std::size_t ns,
                               const std::uint32_t* large, std::size_t nl,
                               std::uint32_t* out) {
  std::size_t pos = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    const std::uint32_t x = small[i];
    pos = GallopLowerBound(large, nl, pos, x);
    if (pos == nl) break;
    if (large[pos] == x) {
      out[n++] = x;
      ++pos;
    }
  }
  return n;
}

std::size_t CountGallopRaw(const std::uint32_t* small, std::size_t ns,
                           const std::uint32_t* large, std::size_t nl) {
  std::size_t pos = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large, nl, pos, small[i]);
    if (pos == nl) break;
    if (large[pos] == small[i]) {
      ++count;
      ++pos;
    }
  }
  return count;
}

constexpr KernelTable kScalarTable = {&IntersectMergeScalar,
                                      &CountMergeScalar};

bool CpuSupports(IntersectionArch arch) {
#if defined(__x86_64__) || defined(__i386__)
  switch (arch) {
    case IntersectionArch::kScalar:
      return true;
    case IntersectionArch::kSse4:
      return __builtin_cpu_supports("sse4.2") != 0;
    case IntersectionArch::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return arch == IntersectionArch::kScalar;
#endif
}

const KernelTable* CompiledTable(IntersectionArch arch) {
  switch (arch) {
    case IntersectionArch::kScalar:
      return &kScalarTable;
    case IntersectionArch::kSse4:
      return GetSse4Kernels();
    case IntersectionArch::kAvx2:
      return GetAvx2Kernels();
  }
  return nullptr;
}

struct Dispatch {
  IntersectionArch arch = IntersectionArch::kScalar;
  // Null when the scalar tier was selected: the merge kernels are then
  // called directly and attributed to the scalar_merge path counter.
  const KernelTable* simd = nullptr;
};

Dispatch SelectDispatch() {
  Dispatch d;
  const char* force = std::getenv("CECI_FORCE_SCALAR");
  if (force == nullptr || std::strcmp(force, "1") != 0) {
    for (IntersectionArch arch :
         {IntersectionArch::kAvx2, IntersectionArch::kSse4}) {
      const KernelTable* table = CompiledTable(arch);
      if (table != nullptr && CpuSupports(arch)) {
        d.arch = arch;
        d.simd = table;
        break;
      }
    }
  }
  MetricsRegistry::Global()
      .GetCounter(std::string("ceci.intersect.dispatch.") +
                  IntersectionArchName(d.arch))
      .Increment();
  return d;
}

const Dispatch& GetDispatch() {
  static const Dispatch dispatch = SelectDispatch();
  return dispatch;
}

// Kernel-level counters, batched thread-locally so the hot path never
// touches the (sharded but still atomic) registry cells per call. Flushed
// every kFlushEvery kernel invocations and at thread exit; the registry
// singleton is leaky, so the thread-exit flush is always safe.
struct TlsKernelStats {
  std::uint64_t calls = 0;
  std::uint64_t elements_in = 0;
  std::uint64_t elements_out = 0;
  std::uint64_t path_gallop = 0;
  std::uint64_t path_vector = 0;
  std::uint64_t path_scalar_merge = 0;

  static constexpr std::uint64_t kFlushEvery = 4096;

  ~TlsKernelStats() { Flush(); }

  void Flush() {
    if (calls == 0) return;
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter& c_calls = reg.GetCounter("ceci.intersect.calls");
    static Counter& c_in = reg.GetCounter("ceci.intersect.elements_in");
    static Counter& c_out = reg.GetCounter("ceci.intersect.elements_out");
    static Counter& c_gallop = reg.GetCounter("ceci.intersect.path.gallop");
    static Counter& c_vector = reg.GetCounter("ceci.intersect.path.vector");
    static Counter& c_merge =
        reg.GetCounter("ceci.intersect.path.scalar_merge");
    c_calls.Add(calls);
    c_in.Add(elements_in);
    c_out.Add(elements_out);
    c_gallop.Add(path_gallop);
    c_vector.Add(path_vector);
    c_merge.Add(path_scalar_merge);
    *this = TlsKernelStats{};
  }

  void Account(std::size_t in, std::size_t out, std::uint64_t* path) {
    ++calls;
    elements_in += in;
    elements_out += out;
    ++*path;
    if (calls >= kFlushEvery) Flush();
  }
};

thread_local TlsKernelStats tls_kernel_stats;

// Pairwise core: picks gallop vs the dispatched kernel and records path
// counters. `out` may alias `a` or provide min(na, nb) + kKernelPad slots.
std::size_t IntersectCore(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  TlsKernelStats& stats = tls_kernel_stats;
  const std::size_t ns = std::min(na, nb);
  const std::size_t nl = std::max(na, nb);
  std::size_t n;
  if (ns == 0) {
    n = 0;
    stats.Account(na + nb, 0, &stats.path_scalar_merge);
  } else if (nl / ns >= kGallopFactor) {
    n = na <= nb ? IntersectGallopRaw(a, na, b, nb, out)
                 : IntersectGallopRaw(b, nb, a, na, out);
    stats.Account(na + nb, n, &stats.path_gallop);
  } else if (const Dispatch& d = GetDispatch(); d.simd != nullptr) {
    n = d.simd->intersect(a, na, b, nb, out);
    stats.Account(na + nb, n, &stats.path_vector);
  } else {
    n = IntersectMergeScalar(a, na, b, nb, out);
    stats.Account(na + nb, n, &stats.path_scalar_merge);
  }
  return n;
}

std::size_t CountCore(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb) {
  TlsKernelStats& stats = tls_kernel_stats;
  const std::size_t ns = std::min(na, nb);
  const std::size_t nl = std::max(na, nb);
  std::size_t n;
  if (ns == 0) {
    n = 0;
    stats.Account(na + nb, 0, &stats.path_scalar_merge);
  } else if (nl / ns >= kGallopFactor) {
    n = na <= nb ? CountGallopRaw(a, na, b, nb)
                 : CountGallopRaw(b, nb, a, na);
    stats.Account(na + nb, n, &stats.path_gallop);
  } else if (const Dispatch& d = GetDispatch(); d.simd != nullptr) {
    n = d.simd->count(a, na, b, nb);
    stats.Account(na + nb, n, &stats.path_vector);
  } else {
    n = CountMergeScalar(a, na, b, nb);
    stats.Account(na + nb, n, &stats.path_scalar_merge);
  }
  return n;
}

}  // namespace

namespace intersection_internal {

std::size_t IntersectMergeScalar(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  return MergeScalarTail(a, na, i, b, nb, j, out, 0);
}

std::size_t CountMergeScalar(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb) {
  return CountScalarTail(a, na, 0, b, nb, 0);
}

}  // namespace intersection_internal

const char* IntersectionArchName(IntersectionArch arch) {
  switch (arch) {
    case IntersectionArch::kScalar:
      return "scalar";
    case IntersectionArch::kSse4:
      return "sse4";
    case IntersectionArch::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IntersectionArch ActiveIntersectionArch() { return GetDispatch().arch; }

void FlushIntersectionThreadStats() { tls_kernel_stats.Flush(); }

bool IntersectionArchAvailable(IntersectionArch arch) {
  return CompiledTable(arch) != nullptr && CpuSupports(arch);
}

bool IntersectSortedWithArch(IntersectionArch arch,
                             std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b,
                             std::vector<std::uint32_t>* out) {
  out->clear();
  if (!IntersectionArchAvailable(arch)) return false;
  const KernelTable* table = CompiledTable(arch);
  out->resize(std::min(a.size(), b.size()) + kKernelPad);
  const std::size_t n =
      table->intersect(a.data(), a.size(), b.data(), b.size(), out->data());
  out->resize(n);
  return true;
}

bool IntersectionSizeWithArch(IntersectionArch arch,
                              std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b,
                              std::size_t* size) {
  if (!IntersectionArchAvailable(arch)) return false;
  *size = CompiledTable(arch)->count(a.data(), a.size(), b.data(), b.size());
  return true;
}

void IntersectSorted(std::span<const std::uint32_t> a,
                     std::span<const std::uint32_t> b,
                     std::vector<std::uint32_t>* out) {
  // Every kernel (merge, galloping, SIMD) assumes sorted duplicate-free
  // input; violating that returns garbage, not an error.
  CECI_DCHECK(std::is_sorted(a.begin(), a.end()));
  CECI_DCHECK(std::is_sorted(b.begin(), b.end()));
  out->clear();
  if (a.empty() || b.empty()) return;
  out->resize(std::min(a.size(), b.size()) + kKernelPad);
  const std::size_t n =
      IntersectCore(a.data(), a.size(), b.data(), b.size(), out->data());
  out->resize(n);
}

void IntersectSortedInPlace(std::vector<std::uint32_t>* inout,
                            std::span<const std::uint32_t> b) {
  if (inout->empty()) return;
  if (b.empty()) {
    inout->clear();
    return;
  }
  const std::size_t n = IntersectCore(inout->data(), inout->size(), b.data(),
                                      b.size(), inout->data());
  inout->resize(n);
}

void IntersectSortedMulti(std::span<const std::span<const std::uint32_t>> lists,
                          std::vector<std::uint32_t>* out) {
  for (const auto& list : lists) {
    CECI_DCHECK(std::is_sorted(list.begin(), list.end()));
  }
  out->clear();
  if (lists.empty()) return;
  if (lists.size() == 1) {
    out->assign(lists[0].begin(), lists[0].end());
    return;
  }
  // Seed with the two smallest lists (one out-of-place kernel call), then
  // refine in place against the rest.
  std::size_t s0 = 0;
  for (std::size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[s0].size()) s0 = i;
  }
  std::size_t s1 = s0 == 0 ? 1 : 0;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (i != s0 && lists[i].size() < lists[s1].size()) s1 = i;
  }
  out->resize(lists[s0].size() + kKernelPad);
  std::size_t n = IntersectCore(lists[s0].data(), lists[s0].size(),
                                lists[s1].data(), lists[s1].size(),
                                out->data());
  out->resize(n);
  for (std::size_t i = 0; i < lists.size() && !out->empty(); ++i) {
    if (i == s0 || i == s1) continue;
    IntersectSortedInPlace(out, lists[i]);
  }
}

std::size_t IntersectionSize(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) {
  CECI_DCHECK(std::is_sorted(a.begin(), a.end()));
  CECI_DCHECK(std::is_sorted(b.begin(), b.end()));
  if (a.empty() || b.empty()) return 0;
  return CountCore(a.data(), a.size(), b.data(), b.size());
}

std::size_t IntersectionSizeMulti(
    std::span<const std::span<const std::uint32_t>> lists) {
  if (lists.empty()) return 0;
  if (lists.size() == 1) return lists[0].size();
  // Leave the largest list for the final counting pass so the materialized
  // intermediate stays as small as possible.
  std::size_t largest = 0;
  for (std::size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() > lists[largest].size()) largest = i;
  }
  if (lists.size() == 2) {
    const std::size_t other = 1 - largest;
    return IntersectionSize(lists[other], lists[largest]);
  }
  std::size_t s0 = largest == 0 ? 1 : 0;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (i != largest && lists[i].size() < lists[s0].size()) s0 = i;
  }
  thread_local std::vector<std::uint32_t> scratch;
  scratch.resize(lists[s0].size() + kKernelPad);
  std::size_t n = 0;
  bool seeded = false;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (i == largest || i == s0) continue;
    if (!seeded) {
      n = IntersectCore(lists[s0].data(), lists[s0].size(), lists[i].data(),
                        lists[i].size(), scratch.data());
      seeded = true;
    } else {
      n = IntersectCore(scratch.data(), n, lists[i].data(), lists[i].size(),
                        scratch.data());
    }
    if (n == 0) return 0;
  }
  return CountCore(scratch.data(), n, lists[largest].data(),
                   lists[largest].size());
}

bool SortedContains(std::span<const std::uint32_t> sorted, std::uint32_t x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

}  // namespace ceci
