#include "util/intersection.h"

#include <algorithm>

namespace ceci {
namespace {

// One side much smaller: for each element of the small side, gallop in the
// large side. Threshold chosen empirically; a factor of 32 keeps the merge
// scan for near-equal sizes.
constexpr std::size_t kGallopFactor = 32;

// Finds the first index i >= lo with hay[i] >= needle using exponential
// probing followed by binary search.
std::size_t GallopLowerBound(std::span<const std::uint32_t> hay,
                             std::size_t lo, std::uint32_t needle) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < hay.size() && hay[hi] < needle) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, hay.size());
  return static_cast<std::size_t>(
      std::lower_bound(hay.begin() + lo, hay.begin() + hi, needle) -
      hay.begin());
}

void IntersectGalloping(std::span<const std::uint32_t> small,
                        std::span<const std::uint32_t> large,
                        std::vector<std::uint32_t>* out) {
  std::size_t pos = 0;
  for (std::uint32_t x : small) {
    pos = GallopLowerBound(large, pos, x);
    if (pos == large.size()) break;
    if (large[pos] == x) {
      out->push_back(x);
      ++pos;
    }
  }
}

void IntersectMerge(std::span<const std::uint32_t> a,
                    std::span<const std::uint32_t> b,
                    std::vector<std::uint32_t>* out) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

void IntersectSorted(std::span<const std::uint32_t> a,
                     std::span<const std::uint32_t> b,
                     std::vector<std::uint32_t>* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size()) std::swap(a, b);
  out->reserve(a.size());
  if (b.size() / a.size() >= kGallopFactor) {
    IntersectGalloping(a, b, out);
  } else {
    IntersectMerge(a, b, out);
  }
}

void IntersectSortedInPlace(std::vector<std::uint32_t>* inout,
                            std::span<const std::uint32_t> b) {
  if (inout->empty()) return;
  if (b.empty()) {
    inout->clear();
    return;
  }
  std::size_t write = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < inout->size() && j < b.size();) {
    std::uint32_t x = (*inout)[i];
    if (x < b[j]) {
      ++i;
    } else if (x > b[j]) {
      ++j;
    } else {
      (*inout)[write++] = x;
      ++i;
      ++j;
    }
  }
  inout->resize(write);
}

void IntersectSortedMulti(std::span<const std::span<const std::uint32_t>> lists,
                          std::vector<std::uint32_t>* out) {
  out->clear();
  if (lists.empty()) return;
  // Start from the smallest list to bound the working set.
  std::size_t smallest = 0;
  for (std::size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[smallest].size()) smallest = i;
  }
  out->assign(lists[smallest].begin(), lists[smallest].end());
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (i == smallest) continue;
    IntersectSortedInPlace(out, lists[i]);
    if (out->empty()) return;
  }
}

std::size_t IntersectionSize(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  std::size_t count = 0;
  if (b.size() / a.size() >= kGallopFactor) {
    std::size_t pos = 0;
    for (std::uint32_t x : a) {
      pos = GallopLowerBound(b, pos, x);
      if (pos == b.size()) break;
      if (b[pos] == x) {
        ++count;
        ++pos;
      }
    }
  } else {
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
  }
  return count;
}

bool SortedContains(std::span<const std::uint32_t> sorted, std::uint32_t x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

}  // namespace ceci
