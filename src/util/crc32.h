// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//
// Used by the flat-index persistence format (ceci/index_io.h) to checksum
// the header, slab table, and every slab so corrupt or truncated index
// files are rejected with a clean Status instead of being enumerated.
#ifndef CECI_UTIL_CRC32_H_
#define CECI_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ceci {

/// CRC-32 of `size` bytes at `data`. Chain blocks by passing the previous
/// result as `seed` (the empty-input CRC is 0).
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace ceci

#endif  // CECI_UTIL_CRC32_H_
