// Status / Result<T> error handling for fallible operations (I/O, parsing,
// validation). Follows the RocksDB/Arrow idiom: no exceptions cross the
// public API; internal invariants use CECI_CHECK from logging.h.
#ifndef CECI_UTIL_STATUS_H_
#define CECI_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace ceci {

/// Outcome of a fallible operation. Cheap to copy in the OK case.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kCorruption,
    kUnimplemented,
  };

  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value or an error Status. Accessing value() on an error aborts with
/// the contained status printed (CECI_CHECK discipline, not a bare
/// std::get throw) — callers must test ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {}     // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  T& value() & {
    EnsureOk();
    return std::get<T>(payload_);
  }
  const T& value() const& {
    EnsureOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(payload_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void EnsureOk() const {
    CECI_CHECK(ok()) << "Result::value() on error status: "
                     << std::get<Status>(payload_).ToString();
  }

  std::variant<T, Status> payload_;
};

}  // namespace ceci

/// Propagates a non-OK Status from an expression to the caller.
#define CECI_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ceci::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // CECI_UTIL_STATUS_H_
