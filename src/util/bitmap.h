// Fixed-width bitmap kernels for the hybrid candidate-set representation
// (ceci/flat_index.h). Dense candidate-set entries are stored as bitmaps
// over *ranks* into the owning vertex's candidate array; intersecting k
// dense sets is then k-1 word-wise ANDs plus a popcount or set-bit
// extraction, instead of a k-way sorted merge.
//
// All kernels are simple u64 loops the compiler auto-vectorizes; unlike
// the sorted-array kernels (util/intersection.h) there is no data-dependent
// control flow to hand-tune, so no per-ISA dispatch tier exists here.
#ifndef CECI_UTIL_BITMAP_H_
#define CECI_UTIL_BITMAP_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace ceci {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t BitmapWords(std::size_t bits) {
  return (bits + 63) / 64;
}

/// acc &= other, word-wise. `other` may be shorter than `acc`; the excess
/// words of `acc` are cleared (a shorter bitmap has those bits unset).
inline void BitmapAndInPlace(std::span<std::uint64_t> acc,
                             std::span<const std::uint64_t> other) {
  const std::size_t common = other.size() < acc.size() ? other.size()
                                                       : acc.size();
  for (std::size_t w = 0; w < common; ++w) acc[w] &= other[w];
  for (std::size_t w = common; w < acc.size(); ++w) acc[w] = 0;
}

/// Clears every bit outside the half-open position window [lo, hi).
inline void BitmapMaskWindow(std::span<std::uint64_t> acc, std::uint32_t lo,
                             std::uint32_t hi) {
  const std::uint64_t total = static_cast<std::uint64_t>(acc.size()) * 64;
  if (hi > total) hi = static_cast<std::uint32_t>(total);
  if (lo >= hi) {
    for (auto& w : acc) w = 0;
    return;
  }
  const std::size_t lo_word = lo >> 6;
  const std::size_t hi_word = hi >> 6;  // word holding the first cleared bit
  for (std::size_t w = 0; w < lo_word; ++w) acc[w] = 0;
  acc[lo_word] &= ~std::uint64_t{0} << (lo & 63);
  if (hi_word < acc.size()) {
    acc[hi_word] &= (hi & 63) == 0 ? 0 : ~std::uint64_t{0} >> (64 - (hi & 63));
    for (std::size_t w = hi_word + 1; w < acc.size(); ++w) acc[w] = 0;
  }
}

/// Number of set bits.
inline std::size_t BitmapPopcount(std::span<const std::uint64_t> bits) {
  std::size_t n = 0;
  for (std::uint64_t w : bits) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

/// True iff bit `pos` is set (false when `pos` is past the end).
inline bool BitmapTest(std::span<const std::uint64_t> bits,
                       std::uint32_t pos) {
  const std::size_t w = pos >> 6;
  return w < bits.size() && ((bits[w] >> (pos & 63)) & 1) != 0;
}

/// Appends the positions of all set bits, ascending, to `out`.
inline void BitmapExtract(std::span<const std::uint64_t> bits,
                          std::vector<std::uint32_t>* out) {
  for (std::size_t w = 0; w < bits.size(); ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out->push_back(static_cast<std::uint32_t>(w * 64 + b));
      word &= word - 1;
    }
  }
}

}  // namespace ceci

#endif  // CECI_UTIL_BITMAP_H_
