// Process-wide runtime metrics: named counters, gauges, and histograms.
//
// The registry is the telemetry backbone for long-running serving
// deployments: every query that flows through CeciMatcher / CachedMatcher /
// distsim mirrors its per-call statistics into process-cumulative metrics
// that an operator can snapshot at any time (`ceci_query --metrics-json`,
// or MetricsRegistry::Global().SnapshotJson() embedded in a server).
//
// Write-side design: counters and histograms shard their cells across
// cache-line-padded atomic slots indexed by a thread-local ordinal, so
// concurrent Increment() calls from enumeration workers never contend on
// one cache line. Reads (Snapshot) sum the shards; a snapshot taken while
// writers are active is a consistent-enough monotone view (each shard is
// read atomically; the total may lag increments that race the sweep, never
// lead them).
//
// Handle lookup takes a mutex — hoist it out of hot loops:
//
//   static Counter& calls =
//       MetricsRegistry::Global().GetCounter("ceci.enumerate.recursive_calls");
//   calls.Add(n);
#ifndef CECI_UTIL_METRICS_REGISTRY_H_
#define CECI_UTIL_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace ceci {

namespace metrics_internal {

/// Number of independent write slots per sharded metric. A power of two;
/// threads map to slots by a thread-local ordinal, so up to kShards writer
/// threads proceed with zero cache-line sharing.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread ordinal in [0, kShards).
std::size_t ThreadShard();

struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace metrics_internal

/// Monotone event counter.
class Counter {
 public:
  void Add(std::uint64_t n) {
    cells_[metrics_internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over shards.
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }
  metrics_internal::PaddedCell cells_[metrics_internal::kShards];
};

/// Last-writer-wins instantaneous value (cache sizes, pool occupancy).
/// Gauges are set at low frequency, so a single atomic suffices.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

/// Read-side summary of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// Per-bucket observation counts; bucket b holds values whose bit width
  /// is b, i.e. the range [2^(b-1), 2^b) (bucket 0 holds the value 0).
  std::vector<std::uint64_t> buckets;

  /// Largest value bucket `b` can hold: 0 for bucket 0, 2^b - 1 otherwise
  /// (saturating at UINT64_MAX). Shared by Percentile(), the Prometheus
  /// exposition renderer (telemetry/exposition.h), and the SLO latency
  /// accounting, so every consumer agrees on the bucket boundaries.
  static std::uint64_t BucketUpperBound(std::size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~0ull;
    return (1ull << bucket) - 1;
  }

  /// Upper bound of the bucket containing the p-th percentile (p in
  /// [0, 100]); exact to within a factor of 2. Returns 0 on empty.
  std::uint64_t Percentile(double p) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log2-bucketed distribution of non-negative integer samples (latencies in
/// microseconds, list lengths, payload bytes). Sharded like Counter.
class Histogram {
 public:
  void Record(std::uint64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  void Reset();

  // 0 plus one bucket per possible bit width of a uint64.
  static constexpr std::size_t kBuckets = 65;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[metrics_internal::kShards];
  // min/max keep a single CAS cell each; updates are rare after warmup.
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time view of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metric registry. Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime (metrics are
/// never deregistered).
class MetricsRegistry {
 public:
  /// The process-wide instance used by all CECI instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Serializes Snapshot() as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count,sum,min,max,mean,p50,p90,p99}}}
  std::string SnapshotJson() const;

  /// Zeroes every registered metric (names stay registered). Tests only;
  /// racing writers may leave residue from in-flight increments.
  void ResetForTest();

 private:
  // The mutex guards only the name->metric maps (registration and
  // snapshot sweeps). The metric cells themselves are lock-free sharded
  // atomics — handles returned by Get* are written without any lock,
  // which is the whole point of the sharded design above.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CECI_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CECI_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CECI_GUARDED_BY(mutex_);
};

}  // namespace ceci

#endif  // CECI_UTIL_METRICS_REGISTRY_H_
