// Minimal logging and CHECK macros for internal invariants.
#ifndef CECI_UTIL_LOGGING_H_
#define CECI_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ceci {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after streaming the message. Used by CECI_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ceci

#define CECI_LOG(level)                                                     \
  ::ceci::internal_logging::LogMessage(::ceci::LogLevel::k##level, __FILE__, \
                                       __LINE__)                             \
      .stream()

#define CECI_CHECK(condition)                                              \
  if (!(condition))                                                        \
  ::ceci::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)   \
      .stream()

// The debug-only CECI_DCHECK tier lives in util/check.h.

#endif  // CECI_UTIL_LOGGING_H_
