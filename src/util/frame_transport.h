// Length-prefixed message framing over a stream socket, used by the
// supervisor/worker channel (src/dist/). Like util/subprocess.h this is
// the designated home for raw socket I/O — the lint rule keeps `socket`-
// family primitives out of the rest of the tree.
//
// Wire format, little-endian:
//
//   u32 payload_bytes | u8 type | payload_bytes bytes
//
// The channel owns its descriptor, keeps it non-blocking, and gives every
// operation a deadline. Transient failures (EINTR, EAGAIN, ENOBUFS,
// ENOMEM) are retried under the deadline with capped exponential backoff;
// a peer hangup surfaces as a clean kIoError whose message starts with
// "eof" — the supervisor's fastest crash signal. Payload encode/decode
// helpers live here too so message codecs never hand-roll byte order.
#ifndef CECI_UTIL_FRAME_TRANSPORT_H_
#define CECI_UTIL_FRAME_TRANSPORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace ceci {

struct Frame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

struct TransportOptions {
  /// Per-operation deadline: Send must fully flush and Recv must deliver
  /// a complete frame (once bytes start arriving) within this window.
  double io_timeout_seconds = 30.0;
  /// Backoff after a transient error: starts here, doubles per retry.
  double initial_backoff_seconds = 0.0005;
  /// Backoff cap (the "capped" in capped exponential backoff).
  double max_backoff_seconds = 0.25;
  /// Frames above this size are rejected on both send and receive — a
  /// corrupt length prefix must not turn into a giant allocation.
  std::uint32_t max_frame_bytes = 64u << 20;
};

/// One framed, deadline-bounded message channel over a socket descriptor.
/// Not thread-safe: the owner serializes access (the supervisor runs a
/// single poll loop; the worker is single-threaded).
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Takes ownership of `fd` and switches it to non-blocking mode.
  explicit FrameChannel(int fd, const TransportOptions& options = {});
  ~FrameChannel();

  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0; }
  void Close();

  /// Sends one frame, retrying transient errors with capped exponential
  /// backoff until the options deadline. kIoError("eof ...") when the
  /// peer has hung up.
  Status Send(std::uint8_t type, std::span<const std::uint8_t> payload);

  /// Receives one complete frame. `timeout_seconds` bounds the wait for
  /// the *first* byte; once a frame is partially read, the options
  /// io_timeout governs its completion. Returns kNotFound on timeout
  /// (no data — not an error), kIoError("eof ...") on peer hangup, and
  /// kCorruption on an over-limit length prefix.
  Result<Frame> Recv(double timeout_seconds);

  /// True when at least one byte (or EOF) is ready within the timeout.
  bool WaitReadable(double timeout_seconds) const;

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  /// Reads whatever is available into rx_; true if any progress or clean
  /// would-block, false on EOF/fatal (status_ records the reason).
  bool FillFromSocket();

  int fd_ = -1;
  TransportOptions options_;
  std::vector<std::uint8_t> rx_;  // partial-frame reassembly buffer
  Status status_;                 // sticky fatal receive status
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// Poll helper for the supervisor loop: waits up to `timeout_seconds` for
/// readability on any of `fds` (entries < 0 are skipped) and appends the
/// ready descriptors to `ready`. Returns the number of ready descriptors.
int PollReadable(std::span<const int> fds, double timeout_seconds,
                 std::vector<int>* ready);

// --- Payload codec helpers (little-endian) ---
void PutU32(std::vector<std::uint8_t>* buf, std::uint32_t v);
void PutU64(std::vector<std::uint8_t>* buf, std::uint64_t v);
/// Doubles travel as their IEEE-754 bit pattern.
void PutF64(std::vector<std::uint8_t>* buf, double v);
bool GetU32(std::span<const std::uint8_t> buf, std::size_t* offset,
            std::uint32_t* v);
bool GetU64(std::span<const std::uint8_t> buf, std::size_t* offset,
            std::uint64_t* v);
bool GetF64(std::span<const std::uint8_t> buf, std::size_t* offset,
            double* v);

}  // namespace ceci

#endif  // CECI_UTIL_FRAME_TRANSPORT_H_
