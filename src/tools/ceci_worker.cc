// ceci_worker — one partition executor of the multi-process matcher.
//
// Spawned by the supervisor (dist/supervisor.h) with a framed message
// channel on --channel-fd; maps the CEIX partition images under
// --index-dir and enumerates the work-unit prefixes it is assigned,
// streaming back one result frame per unit and heartbeating while idle.
// Not meant to be run by hand; see docs/robustness.md for the protocol.
//
// Exit codes: 0 clean shutdown or supervisor hangup, 1 transport or
// protocol fault, 2 unreadable/corrupt partition image or bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/worker.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ceci_worker --index-dir DIR --worker-id N\n"
               "                   [--channel-fd FD] [--heartbeat-ms MS]\n"
               "                   [--io-timeout-s S] [--no-mmap]\n"
               "                   [--no-symmetry]\n");
}

}  // namespace

int main(int argc, char** argv) {
  ceci::dist::WorkerOptions options;
  bool have_dir = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--index-dir") {
      options.index_dir = next();
      have_dir = true;
    } else if (arg == "--worker-id") {
      options.worker_id =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--channel-fd") {
      options.channel_fd = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--heartbeat-ms") {
      options.heartbeat_seconds = std::strtod(next(), nullptr) / 1000.0;
    } else if (arg == "--io-timeout-s") {
      options.io_timeout_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--no-mmap") {
      options.use_mmap = false;
    } else if (arg == "--no-symmetry") {
      options.break_automorphisms = false;
    } else {
      Usage();
      return 2;
    }
  }
  if (!have_dir) {
    Usage();
    return 2;
  }
  return ceci::dist::RunWorker(options);
}
