// ceci_query — command-line subgraph matcher.
//
// Loads a data graph (edge list, labeled v/e format, or binary CSR), takes
// a query as a pattern expression or a labeled-graph file, and runs the
// CECI pipeline, printing counts and per-phase statistics.
//
//   ceci_query --data graph.txt --pattern "(a:0)-(b:1)-(c:2); (a)-(c)"
//   ceci_query --data graph.bin --format csr --query query.txt
//              --threads 8 --limit 1024 --print
//
// Flags:
//   --data PATH       data graph file (required)
//   --format FMT      edgelist | labeled | csr         (default: edgelist)
//   --pattern EXPR    query as a pattern expression
//   --query PATH      query as a labeled-graph file (alternative)
//   --threads N       worker threads                   (default: 1)
//   --limit N         stop after N embeddings, 0 = all (default: 0)
//   --order NAME      bfs | edge-ranked | path-ranked  (default: bfs)
//   --distribution D  st | cgd | fgd                   (default: cgd)
//   --beta F          extreme-cluster threshold factor (default: 0.2)
//   --no-symmetry     list automorphic duplicates
//   --print           print each embedding
//   --stats           print detailed statistics
//   --trace           record phase spans; print the span tree afterwards
//   --explain         print the per-query EXPLAIN report: per-vertex
//                     candidate counts through each pipeline stage,
//                     measured index bytes, cluster/work-unit skew, and
//                     worker occupancy (implies profiling)
//   --trace-chrome P  record phase spans and write them to P as Chrome
//                     trace-event JSON (load in Perfetto / about:tracing)
//   --metrics-json P  write the full metrics report (JSON) to P, "-" for
//                     stdout; schema in docs/observability.md. Includes
//                     the "profile" block (profiling is enabled)
//   --audit           run the invariant auditor over the data graph, the
//                     query graph, the CECI after build and after refine,
//                     the work-unit partition, and the final result's
//                     termination accounting; exit 3 on violations
//                     (catalog in docs/static_analysis.md)
//   --deadline-ms N   wall-clock deadline; the query stops cooperatively
//                     and reports "termination: deadline" (exit 4)
//   --memory-budget-mb F
//                     cap on CECI index + enumeration state bytes; on
//                     exhaustion reports "termination: memory_budget"
//                     (exit 4)
//   --cancel-after N  request cancellation after N embeddings have been
//                     seen (exercises the cooperative cancellation token;
//                     reports "termination: cancelled", exit 0)
//   --save-index P    write the frozen flat index (plus the pattern text)
//                     to P in the index_io format; serve it later with
//                     `ceci_serve --index P`
//   --no-flat-index   enumerate from the pointer-rich CECI layout instead
//                     of the arena-backed flat layout (A/B comparisons)
//   --dist N          run the query across N real ceci_worker processes
//                     (dist/supervisor.h) instead of in-process threads;
//                     prints per-worker and recovery accounting
//   --failure-plan P  JSON FailurePlan (dist/plan_io.h) injecting real
//                     kill -9 crashes and stragglers into the --dist run —
//                     the chaos harness; totals must still be exact
//   --worker-binary P path to ceci_worker (default: next to this binary)
//   --dist-json P     write the DistRunReport JSON to P, "-" for stdout
//   --no-work-stealing
//                     disable idle-worker re-dispatch in the --dist run
//   --help            print usage to stdout and exit 0
//
// Exit codes:
//   0  query ran to completion (or was cancelled / hit --limit)
//   1  I/O or match error
//   2  usage error
//   3  --audit found invariant violations
//   4  deadline or memory budget exhausted
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/invariant_auditor.h"
#include "ceci/index_io.h"
#include "ceci/matcher.h"
#include "ceci/stats_json.h"
#include "ceci/symmetry.h"
#include "dist/plan_io.h"
#include "dist/supervisor.h"
#include "graphio/binary_csr.h"
#include "graphio/edge_list.h"
#include "graphio/pattern_parser.h"
#include "util/trace.h"

namespace {

using namespace ceci;

struct Args {
  std::string data;
  std::string format = "edgelist";
  std::string pattern;
  std::string query_file;
  std::size_t threads = 1;
  std::uint64_t limit = 0;
  std::string order = "bfs";
  std::string distribution = "cgd";
  double beta = 0.2;
  bool symmetry = true;
  bool print = false;
  bool stats = false;
  bool trace = false;
  bool explain = false;
  bool audit = false;
  double deadline_ms = 0.0;
  double memory_budget_mb = 0.0;
  std::uint64_t cancel_after = 0;
  std::string metrics_json;
  std::string trace_chrome;
  std::string save_index;
  bool flat_index = true;
  std::size_t dist_workers = 0;
  std::string failure_plan;
  std::string worker_binary;
  std::string dist_json;
  bool work_stealing = true;
  double heartbeat_ms = 0.0;
  bool help = false;
};

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --data PATH [--format edgelist|labeled|csr]\n"
               "          (--pattern EXPR | --query PATH)\n"
               "          [--threads N] [--limit N] [--order NAME]\n"
               "          [--distribution st|cgd|fgd] [--beta F]\n"
               "          [--no-symmetry] [--print] [--stats] [--trace]\n"
               "          [--explain] [--trace-chrome PATH]\n"
               "          [--metrics-json PATH|-] [--audit]\n"
               "          [--deadline-ms N] [--memory-budget-mb F]\n"
               "          [--cancel-after N] [--save-index PATH]\n"
               "          [--no-flat-index] [--dist N] [--failure-plan PATH]\n"
               "          [--worker-binary PATH] [--dist-json PATH|-]\n"
               "          [--no-work-stealing] [--heartbeat-ms MS] [--help]\n"
               "exit codes: 0 ok (completed/cancelled/limit), 1 I/O or "
               "match error,\n"
               "            2 usage, 3 audit violations, 4 deadline or "
               "memory budget\n"
               "            exhausted\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--help") {
      args->help = true;
      return true;
    } else if (flag == "--data") {
      const char* v = next();
      if (!v) return false;
      args->data = v;
    } else if (flag == "--format") {
      const char* v = next();
      if (!v) return false;
      args->format = v;
    } else if (flag == "--pattern") {
      const char* v = next();
      if (!v) return false;
      args->pattern = v;
    } else if (flag == "--query") {
      const char* v = next();
      if (!v) return false;
      args->query_file = v;
    } else if (flag == "--threads") {
      const char* v = next();
      if (!v) return false;
      args->threads = std::strtoul(v, nullptr, 10);
    } else if (flag == "--limit") {
      const char* v = next();
      if (!v) return false;
      args->limit = std::strtoull(v, nullptr, 10);
    } else if (flag == "--order") {
      const char* v = next();
      if (!v) return false;
      args->order = v;
    } else if (flag == "--distribution") {
      const char* v = next();
      if (!v) return false;
      args->distribution = v;
    } else if (flag == "--beta") {
      const char* v = next();
      if (!v) return false;
      args->beta = std::strtod(v, nullptr);
    } else if (flag == "--no-symmetry") {
      args->symmetry = false;
    } else if (flag == "--print") {
      args->print = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--trace") {
      args->trace = true;
    } else if (flag == "--explain") {
      args->explain = true;
    } else if (flag == "--trace-chrome") {
      const char* v = next();
      if (!v) return false;
      args->trace_chrome = v;
    } else if (flag.rfind("--trace-chrome=", 0) == 0) {
      args->trace_chrome = flag.substr(std::strlen("--trace-chrome="));
      if (args->trace_chrome.empty()) return false;
    } else if (flag == "--audit") {
      args->audit = true;
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      args->deadline_ms = std::strtod(v, nullptr);
      if (args->deadline_ms <= 0.0) return false;
    } else if (flag == "--memory-budget-mb") {
      const char* v = next();
      if (!v) return false;
      args->memory_budget_mb = std::strtod(v, nullptr);
      if (args->memory_budget_mb <= 0.0) return false;
    } else if (flag == "--cancel-after") {
      const char* v = next();
      if (!v) return false;
      args->cancel_after = std::strtoull(v, nullptr, 10);
      if (args->cancel_after == 0) return false;
    } else if (flag == "--save-index") {
      const char* v = next();
      if (!v) return false;
      args->save_index = v;
    } else if (flag == "--no-flat-index") {
      args->flat_index = false;
    } else if (flag == "--dist") {
      const char* v = next();
      if (!v) return false;
      args->dist_workers = std::strtoul(v, nullptr, 10);
      if (args->dist_workers == 0) return false;
    } else if (flag == "--failure-plan") {
      const char* v = next();
      if (!v) return false;
      args->failure_plan = v;
    } else if (flag == "--worker-binary") {
      const char* v = next();
      if (!v) return false;
      args->worker_binary = v;
    } else if (flag == "--dist-json") {
      const char* v = next();
      if (!v) return false;
      args->dist_json = v;
    } else if (flag == "--no-work-stealing") {
      args->work_stealing = false;
    } else if (flag == "--heartbeat-ms") {
      const char* v = next();
      if (!v) return false;
      args->heartbeat_ms = std::strtod(v, nullptr);
      if (args->heartbeat_ms <= 0.0) return false;
    } else if (flag == "--metrics-json") {
      const char* v = next();
      if (!v) return false;
      args->metrics_json = v;
    } else if (flag.rfind("--metrics-json=", 0) == 0) {
      args->metrics_json = flag.substr(std::strlen("--metrics-json="));
      if (args->metrics_json.empty()) return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->data.empty()) return false;
  if (args->pattern.empty() == args->query_file.empty()) {
    std::fprintf(stderr, "pass exactly one of --pattern / --query\n");
    return false;
  }
  if (!args->save_index.empty() && !args->flat_index) {
    std::fprintf(stderr, "--save-index requires the flat index layout "
                         "(drop --no-flat-index)\n");
    return false;
  }
  if (!args->failure_plan.empty() && args->dist_workers == 0) {
    std::fprintf(stderr, "--failure-plan requires --dist N\n");
    return false;
  }
  if (args->dist_workers > 0 &&
      (args->print || !args->save_index.empty() || args->cancel_after > 0 ||
       args->deadline_ms > 0.0 || args->memory_budget_mb > 0.0 ||
       args->limit > 0)) {
    std::fprintf(stderr, "--dist is incompatible with --print, --limit, "
                         "--save-index, and the budget flags\n");
    return false;
  }
  return true;
}

// Default --worker-binary: ceci_worker next to this executable.
std::string SiblingWorkerBinary(const char* argv0) {
  std::string self = argv0;
  const std::size_t slash = self.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/ceci_worker";
}

Result<Graph> LoadData(const Args& args) {
  if (args.format == "edgelist") return ReadEdgeList(args.data);
  if (args.format == "labeled") return ReadLabeledGraph(args.data);
  if (args.format == "csr") return ReadBinaryCsr(args.data);
  return Status::InvalidArgument("unknown --format " + args.format);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(stderr, argv[0]);
    return 2;
  }
  if (args.help) {
    Usage(stdout, argv[0]);
    return 0;
  }

  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "data graph: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto query = args.pattern.empty() ? ReadLabeledGraph(args.query_file)
                                    : ParsePattern(args.pattern);
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  MatchOptions options;
  options.threads = std::max<std::size_t>(args.threads, 1);
  options.limit = args.limit;
  options.beta = args.beta;
  options.break_automorphisms = args.symmetry;
  options.flat_index = args.flat_index;
  if (args.order == "bfs") {
    options.order = OrderStrategy::kBfs;
  } else if (args.order == "edge-ranked") {
    options.order = OrderStrategy::kEdgeRanked;
  } else if (args.order == "path-ranked") {
    options.order = OrderStrategy::kPathRanked;
  } else {
    std::fprintf(stderr, "unknown --order %s\n", args.order.c_str());
    return 2;
  }
  if (args.distribution == "st") {
    options.distribution = Distribution::kStatic;
  } else if (args.distribution == "cgd") {
    options.distribution = Distribution::kCoarseDynamic;
  } else if (args.distribution == "fgd") {
    options.distribution = Distribution::kFineDynamic;
  } else {
    std::fprintf(stderr, "unknown --distribution %s\n",
                 args.distribution.c_str());
    return 2;
  }

  std::printf("data:  %s\n", data->Summary().c_str());
  std::printf("query: %s  (%s)\n", query->Summary().c_str(),
              FormatPattern(*query).c_str());

  if (args.dist_workers > 0) {
    dist::DistProcessOptions dist_options;
    dist_options.num_workers = args.dist_workers;
    dist_options.worker_binary = args.worker_binary.empty()
                                     ? SiblingWorkerBinary(argv[0])
                                     : args.worker_binary;
    dist_options.beta = args.beta;
    dist_options.break_automorphisms = args.symmetry;
    dist_options.work_stealing = args.work_stealing;
    if (args.heartbeat_ms > 0.0) {
      dist_options.heartbeat_seconds = args.heartbeat_ms / 1000.0;
    }
    if (!args.failure_plan.empty()) {
      auto plan = dist::ReadFailurePlanJson(args.failure_plan);
      if (!plan.ok()) {
        std::fprintf(stderr, "failure-plan: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      dist_options.failure_plan = *plan;
    }
    auto report = dist::RunDistributed(*data, *query, dist_options);
    if (!report.ok()) {
      std::fprintf(stderr, "dist: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("embeddings: %llu\n",
                static_cast<unsigned long long>(report->embeddings));
    std::printf("dist: %zu workers, %llu units, wall %.3fs "
                "(preprocess %.3f, build %.3f)\n",
                args.dist_workers,
                static_cast<unsigned long long>(report->total_units),
                report->wall_seconds, report->preprocess_seconds,
                report->build_seconds);
    std::printf("recovery: %zu crashed, %llu clusters reassigned, "
                "%llu units redelivered, %llu results discarded, "
                "%llu heartbeat timeouts\n",
                report->crashed_workers,
                static_cast<unsigned long long>(
                    report->total_reassigned_clusters),
                static_cast<unsigned long long>(
                    report->total_redelivered_units),
                static_cast<unsigned long long>(report->discarded_results),
                static_cast<unsigned long long>(report->heartbeat_timeouts));
    for (const auto& w : report->workers) {
      std::printf("  worker %u: pid %lld%s, %zu pivots, %zu units -> "
                  "%llu executed (%llu adopted, %llu stolen), "
                  "%llu embeddings, enum %.3fs\n",
                  w.worker_id, static_cast<long long>(w.pid),
                  w.crashed ? (w.killed_by_plan ? " [killed by plan]"
                                                : " [crashed]")
                            : "",
                  w.pivots, w.initial_units,
                  static_cast<unsigned long long>(w.units_executed),
                  static_cast<unsigned long long>(w.adopted_units),
                  static_cast<unsigned long long>(w.stolen_units),
                  static_cast<unsigned long long>(w.embeddings),
                  w.enum_seconds);
    }
    std::printf("audit: %s\n", report->audit_summary.c_str());
    if (!args.dist_json.empty()) {
      const std::string json = dist::DistRunReportJson(*report);
      if (args.dist_json == "-") {
        std::printf("%s\n", json.c_str());
      } else {
        std::FILE* f = std::fopen(args.dist_json.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "dist-json: cannot open %s\n",
                       args.dist_json.c_str());
          return 1;
        }
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
      }
    }
    return report->audit_ok ? 0 : 3;
  }

  if (args.trace || !args.metrics_json.empty() ||
      !args.trace_chrome.empty()) {
    Tracer::Global().Enable();
  }
  // --explain needs the profile; --metrics-json gains its "profile" block
  // the same way.
  if (args.explain || !args.metrics_json.empty()) {
    options.profile = true;
  }

  // --audit: validate both input graphs up front, then hook the matcher
  // pipeline to audit the index after build and after refinement, plus the
  // work-unit partition the scheduler would enumerate from.
  AuditReport audit_report;
  SymmetryConstraints audit_symmetry;
  // For the profile and flat-layout cross-checks the refined tree/index
  // (and the frozen flat arena) must outlive Match(); all are plain
  // copyable data, and copying is acceptable at audit cost.
  QueryTree audited_tree;
  CeciIndex audited_index;
  FlatCeciIndex audited_flat;
  bool audited_refined_captured = false;
  bool audited_flat_captured = false;
  if (args.audit) {
    audit_report.Merge(AuditGraph(*data));
    audit_report.Merge(AuditGraph(*query));
    audit_symmetry = args.symmetry
                         ? SymmetryConstraints::Compute(*query)
                         : SymmetryConstraints::None(query->num_vertices());
    options.index_inspector = [&](const QueryTree& tree,
                                  const CeciIndex& index, bool refined) {
      AuditOptions audit_options;
      audit_options.refined = refined;
      audit_report.Merge(
          AuditCeciIndex(*data, *query, tree, index, audit_options));
      if (refined) {
        EnumOptions enum_options;
        enum_options.nte_intersection = options.nte_intersection;
        enum_options.symmetry = &audit_symmetry;
        const bool fine = options.distribution == Distribution::kFineDynamic;
        const bool sorted =
            options.distribution != Distribution::kStatic;
        std::vector<WorkUnit> units = BuildWorkUnits(
            *data, tree, index, enum_options, options.threads, options.beta,
            fine, sorted, nullptr);
        AuditWorkUnits(*data, tree, index, enum_options, units,
                       &audit_report);
        audited_tree = tree;
        audited_index = index;
        audited_refined_captured = true;
      }
    };
  }

  // The flat inspector serves --audit (layout invariants + pointer/flat
  // agreement) and --save-index; it fires once, right after the freeze.
  Status save_status;
  bool index_saved = false;
  if (args.audit || !args.save_index.empty()) {
    options.flat_inspector = [&](const QueryTree& tree,
                                 const FlatCeciIndex& flat) {
      if (args.audit) {
        AuditFlatIndex(tree, flat, &audit_report);
        if (audited_refined_captured) {
          AuditFlatAgainstIndex(tree, audited_index, flat, &audit_report);
        }
        audited_flat = flat.Clone();
        audited_flat_captured = true;
      }
      if (!args.save_index.empty()) {
        save_status =
            WriteFlatIndex(flat, FormatPattern(*query), args.save_index);
        index_saved = save_status.ok();
      }
    };
  }

  // Resilience caps: deadline / byte budget / cancellation token, all
  // carried through MatchOptions (util/budget.h).
  CancellationToken cancel_token;
  if (args.deadline_ms > 0.0) {
    options.budget.deadline_seconds = args.deadline_ms / 1000.0;
  }
  if (args.memory_budget_mb > 0.0) {
    options.budget.memory_budget_bytes =
        static_cast<std::size_t>(args.memory_budget_mb * 1024.0 * 1024.0);
  }
  if (args.cancel_after > 0) {
    options.budget.token = &cancel_token;
    // Tighter poll stride: a visitor-driven cancel should land within a
    // few recursive calls, not the default 4096. Tiny queries can still
    // finish before the first poll — then the honest answer is
    // "completed", and both outcomes exit 0.
    options.budget.check_stride = 64;
  }

  CeciMatcher matcher(*data);
  std::atomic<std::uint64_t> seen{0};
  EmbeddingVisitor visitor = [&](std::span<const VertexId> m) {
    if (args.print) {
      std::printf("  {");
      for (std::size_t u = 0; u < m.size(); ++u) {
        std::printf("%su%zu->%u", u == 0 ? "" : ", ", u, m[u]);
      }
      std::printf("}\n");
    }
    if (args.cancel_after > 0 &&
        seen.fetch_add(1, std::memory_order_relaxed) + 1 >=
            args.cancel_after) {
      cancel_token.RequestCancel();
    }
    return true;
  };
  const bool need_visitor = args.print || args.cancel_after > 0;
  auto result = matcher.Match(*query, options,
                              need_visitor ? &visitor : nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "match: %s\n", result.status().ToString().c_str());
    return 1;
  }

  if (!args.save_index.empty()) {
    if (!save_status.ok()) {
      std::fprintf(stderr, "save-index: %s\n",
                   save_status.ToString().c_str());
      return 1;
    }
    if (!index_saved) {
      std::fprintf(stderr, "save-index: the query terminated before the "
                           "index was frozen (infeasible or budget)\n");
      return 1;
    }
    std::printf("index saved: %s\n", args.save_index.c_str());
  }

  if (args.audit && result->profile.has_value()) {
    // The profile's footprints reflect the layout enumeration read.
    if (args.flat_index && audited_flat_captured) {
      AuditQueryProfile(audited_tree, audited_flat, *result->profile,
                        &audit_report);
    } else if (!args.flat_index && audited_refined_captured) {
      AuditQueryProfile(audited_tree, audited_index, *result->profile,
                        &audit_report);
    }
  }
  if (args.audit) {
    AuditMatchResult(*result, &audit_report);
  }

  std::printf("embeddings: %llu\n",
              static_cast<unsigned long long>(result->embedding_count));
  std::printf("termination: %s\n",
              TerminationReasonName(result->termination).c_str());
  const MatchStats& s = result->stats;
  std::printf("time: %.3fs (preprocess %.3f, build %.3f, refine %.3f, "
              "enumerate %.3f)\n",
              s.total_seconds, s.preprocess_seconds, s.build_seconds,
              s.refine_seconds, s.enumerate_seconds);
  if (args.stats) {
    std::printf("clusters: %zu  cardinality bound: %llu\n",
                s.embedding_clusters,
                static_cast<unsigned long long>(s.total_cardinality));
    std::printf("index: %zu candidate edges, %zu bytes (theoretical %zu)\n",
                s.candidate_edges, s.ceci_bytes, s.theoretical_bytes);
    std::printf("search: %llu recursive calls, %llu intersections, "
                "%llu edge verifications\n",
                static_cast<unsigned long long>(
                    s.enumeration.recursive_calls),
                static_cast<unsigned long long>(s.enumeration.intersections),
                static_cast<unsigned long long>(
                    s.enumeration.edge_verifications));
    std::printf("intersection volume: %llu elements in, %llu out\n",
                static_cast<unsigned long long>(
                    s.enumeration.intersection_elements_in),
                static_cast<unsigned long long>(
                    s.enumeration.intersection_elements_out));
    std::printf("filters: label %llu, degree %llu, NLC %llu, cascades %llu\n",
                static_cast<unsigned long long>(s.build.rejected_label),
                static_cast<unsigned long long>(s.build.rejected_degree),
                static_cast<unsigned long long>(s.build.rejected_nlc),
                static_cast<unsigned long long>(s.build.cascade_removals));
    std::printf("automorphisms broken: %zu\n", s.automorphisms_broken);
  }
  if (args.explain && result->profile.has_value()) {
    std::printf("%s", FormatExplain(*result->profile, s).c_str());
  }
  if (args.audit) {
    std::printf("audit: %s\n", audit_report.ToString().c_str());
  }
  if (args.trace) {
    std::printf("trace:\n%s", Tracer::Global().FormatTree().c_str());
  }
  if (!args.metrics_json.empty()) {
    const std::string json = MetricsReportJson(*result);
    if (args.metrics_json == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::FILE* f = std::fopen(args.metrics_json.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "metrics-json: cannot open %s\n",
                     args.metrics_json.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  if (!args.trace_chrome.empty()) {
    const std::string json = Tracer::Global().ChromeTraceJson();
    std::FILE* f = std::fopen(args.trace_chrome.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "trace-chrome: cannot open %s\n",
                   args.trace_chrome.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }
  if (args.audit && !audit_report.ok()) return 3;
  if (result->termination == TerminationReason::kDeadline ||
      result->termination == TerminationReason::kMemoryBudget) {
    return 4;
  }
  return 0;
}
