// ceci_loadgen — closed-loop workload driver for ceci_serve.
//
// Opens N persistent connections, each replaying patterns drawn from a
// query mix with Zipfian popularity (serve/workload.h), and reports
// throughput and exact latency percentiles. One request is in flight per
// connection (closed loop), so `--connections` is the offered
// concurrency — sweep it to chart the service's saturation behaviour.
//
//   ceci_loadgen --host 127.0.0.1 --port 7001 --connections 8
//                --mix qg --zipf 0.8 --duration-s 10 --out runs.jsonl
//
// Flags:
//   --host ADDR        server address                (default: 127.0.0.1)
//   --port N           server port (required)
//   --connections N    concurrent connections        (default: 4)
//   --duration-s F     measured run length           (default: 10)
//   --requests N       stop after N total requests instead of a duration
//   --warmup-s F       initial seconds excluded from stats (default: 0)
//   --mix M            qg | generated | mixed        (default: qg)
//   --data PATH        data graph (generated/mixed mixes)
//   --format FMT       edgelist | labeled | csr      (default: edgelist)
//   --queries N        generated-query count         (default: 8)
//   --query-size N     generated-query vertices      (default: 4)
//   --zipf S           popularity skew, 0 = uniform  (default: 0)
//   --seed N           workload + sampling seed      (default: 1)
//   --limit N          per-request embedding limit, 0 = all
//   --deadline-ms N    per-request deadline, 0 = server default
//   --retries N        attempts to retry a failed connect or a
//                      `BUSY queue_full` response, with capped
//                      exponential backoff + jitter (default: 0 — every
//                      offered request maps 1:1 to a server submission,
//                      which the tier-1 serving smoke reconciles on)
//   --retry-backoff-ms F
//                      initial retry backoff; doubles per attempt, capped
//                      at 32x, jittered in [0.5, 1.0)  (default: 10)
//   --out PATH         append the run as one JSON line
//   --label STR        free-form tag recorded in the JSON entry
//   --help             print this help and exit 0
//
// Exit codes: 0 run completed (including BUSY retries exhausted — the
// server's admission verdict is a valid outcome, tallied as
// retry_exhausted), 1 I/O / connection error (including connect retries
// exhausted), 2 usage error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graphio/binary_csr.h"
#include "graphio/edge_list.h"
#include "serve/protocol.h"
#include "serve/workload.h"
#include "util/timer.h"

namespace {

using namespace ceci;

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 4;
  double duration_s = 10.0;
  std::uint64_t requests = 0;
  double warmup_s = 0.0;
  WorkloadOptions workload;
  std::string data;
  std::string format = "edgelist";
  double zipf = 0.0;
  std::uint64_t limit = 0;
  double deadline_ms = 0.0;
  std::uint64_t retries = 0;
  double retry_backoff_ms = 10.0;
  std::string out;
  std::string label;
  bool help = false;
};

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --port N [--host ADDR] [--connections N]\n"
               "          [--duration-s F] [--requests N] [--warmup-s F]\n"
               "          [--mix qg|generated|mixed] [--data PATH]\n"
               "          [--format edgelist|labeled|csr] [--queries N]\n"
               "          [--query-size N] [--zipf S] [--seed N]\n"
               "          [--limit N] [--deadline-ms N] [--retries N]\n"
               "          [--retry-backoff-ms F]\n"
               "          [--out PATH] [--label STR] [--help]\n"
               "exit codes: 0 run completed, 1 I/O or connection error, "
               "2 usage\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--help") {
      args->help = true;
      return true;
    } else if (flag == "--host") {
      const char* v = next();
      if (!v) return false;
      args->host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (!v) return false;
      args->port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--connections") {
      const char* v = next();
      if (!v) return false;
      args->connections = std::strtoul(v, nullptr, 10);
      if (args->connections == 0) return false;
    } else if (flag == "--duration-s") {
      const char* v = next();
      if (!v) return false;
      args->duration_s = std::strtod(v, nullptr);
    } else if (flag == "--requests") {
      const char* v = next();
      if (!v) return false;
      args->requests = std::strtoull(v, nullptr, 10);
    } else if (flag == "--warmup-s") {
      const char* v = next();
      if (!v) return false;
      args->warmup_s = std::strtod(v, nullptr);
    } else if (flag == "--mix") {
      const char* v = next();
      if (!v) return false;
      args->workload.mix = v;
    } else if (flag == "--data") {
      const char* v = next();
      if (!v) return false;
      args->data = v;
    } else if (flag == "--format") {
      const char* v = next();
      if (!v) return false;
      args->format = v;
    } else if (flag == "--queries") {
      const char* v = next();
      if (!v) return false;
      args->workload.generated_count = std::strtoul(v, nullptr, 10);
      if (args->workload.generated_count == 0) return false;
    } else if (flag == "--query-size") {
      const char* v = next();
      if (!v) return false;
      args->workload.generated_size = std::strtoul(v, nullptr, 10);
      if (args->workload.generated_size == 0) return false;
    } else if (flag == "--zipf") {
      const char* v = next();
      if (!v) return false;
      args->zipf = std::strtod(v, nullptr);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->workload.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--limit") {
      const char* v = next();
      if (!v) return false;
      args->limit = std::strtoull(v, nullptr, 10);
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      args->deadline_ms = std::strtod(v, nullptr);
    } else if (flag == "--retries") {
      const char* v = next();
      if (!v) return false;
      args->retries = std::strtoull(v, nullptr, 10);
    } else if (flag == "--retry-backoff-ms") {
      const char* v = next();
      if (!v) return false;
      args->retry_backoff_ms = std::strtod(v, nullptr);
      if (args->retry_backoff_ms <= 0.0) return false;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out = v;
    } else if (flag == "--label") {
      const char* v = next();
      if (!v) return false;
      args->label = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->port <= 0) return false;
  if (args->requests == 0 && args->duration_s <= 0.0) return false;
  return true;
}

/// Per-connection outcome tally, keyed by the response's termination.
struct ConnStats {
  std::vector<std::uint64_t> latencies_us;
  /// Requests actually sent to the server, *including* warmup requests
  /// that the latency/outcome tallies exclude. This is the number to
  /// reconcile against the server's ceci.serve.submitted counter and its
  /// access-log line count.
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t limit = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t memory_budget = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  /// Backoff-and-resend attempts (connect + BUSY), across all requests.
  std::uint64_t retries = 0;
  /// Requests still BUSY after the last allowed retry (distinct from
  /// `busy`, which only counts un-retried BUSY verdicts).
  std::uint64_t retry_exhausted = 0;
  bool io_error = false;
};

/// Capped exponential backoff with multiplicative jitter in [0.5, 1.0):
/// attempt k sleeps ~base * 2^min(k, 5). Jitter decorrelates the closed
/// loop — otherwise every connection that got BUSY together retries
/// together and slams the queue again in phase.
void BackoffSleep(double base_ms, std::uint64_t attempt, std::mt19937_64* rng) {
  const double factor =
      static_cast<double>(1u << std::min<std::uint64_t>(attempt, 5));
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  const double ms = base_ms * factor * jitter(*rng);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

int Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // lint: raw-socket TCP client
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    std::size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<Graph> LoadData(const Args& args) {
  if (args.format == "edgelist") return ReadEdgeList(args.data);
  if (args.format == "labeled") return ReadLabeledGraph(args.data);
  if (args.format == "csr") return ReadBinaryCsr(args.data);
  return Status::InvalidArgument("unknown --format " + args.format);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(stderr, argv[0]);
    return 2;
  }
  if (args.help) {
    Usage(stdout, argv[0]);
    return 0;
  }

  // Workload: pattern list in popularity-rank order + request lines.
  Graph data;
  const Graph* data_ptr = nullptr;
  if (!args.data.empty()) {
    auto loaded = LoadData(args);
    if (!loaded.ok()) {
      std::fprintf(stderr, "data graph: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(loaded).value();
    data_ptr = &data;
  }
  auto patterns = BuildWorkload(data_ptr, args.workload);
  if (!patterns.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 patterns.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> request_lines;
  request_lines.reserve(patterns->size());
  for (const std::string& pattern : *patterns) {
    if (args.limit > 0 || args.deadline_ms > 0.0) {
      std::ostringstream line;
      line << "MATCHX limit=" << args.limit << ",deadline_ms="
           << static_cast<std::uint64_t>(args.deadline_ms) << ' ' << pattern
           << '\n';
      request_lines.push_back(line.str());
    } else {
      request_lines.push_back("MATCH " + pattern + "\n");
    }
  }
  const ZipfSampler sampler(request_lines.size(), args.zipf);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> request_budget{
      args.requests == 0 ? -1 : static_cast<std::int64_t>(args.requests)};
  std::vector<ConnStats> stats(args.connections);
  Timer run_timer;

  auto worker = [&](std::size_t conn_id) {
    ConnStats& local = stats[conn_id];
    std::mt19937_64 rng(args.workload.seed * 1000003 + conn_id);
    // A refused connect is usually the server still binding (or its accept
    // loop riding out fd exhaustion) — exactly the transient the bounded
    // backoff is for. Exhaustion is an I/O error: nothing was measured.
    int fd = -1;
    for (std::uint64_t attempt = 0;; ++attempt) {
      fd = Connect(args.host, args.port);
      if (fd >= 0 || attempt >= args.retries) break;
      local.retries += 1;
      BackoffSleep(args.retry_backoff_ms, attempt, &rng);
    }
    if (fd < 0) {
      local.io_error = true;
      return;
    }
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    std::string buffer;
    std::string line;
    while (!stop.load(std::memory_order_relaxed)) {
      if (args.requests > 0 &&
          request_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        break;
      }
      const std::string& request = request_lines[sampler.Sample(uniform(rng))];
      // BUSY queue_full retry loop: each resend is a genuine submission
      // (offered counts it; the server's access log sees it), so with
      // --retries 0 the loop collapses to the old single-shot behaviour.
      std::uint64_t attempt = 0;
      bool io_failed = false;
      std::uint64_t micros = 0;
      Result<WireResponse> response = WireResponse{};
      for (;;) {
        Timer latency;
        if (!SendAll(fd, request)) {
          local.io_error = true;
          io_failed = true;
          break;
        }
        local.offered += 1;
        if (!ReadLine(fd, &buffer, &line)) {
          local.io_error = true;
          io_failed = true;
          break;
        }
        micros = latency.Micros();
        response = ParseResponseLine(line);
        if (response.ok() && response->kind == WireResponse::Kind::kBusy &&
            attempt < args.retries &&
            !stop.load(std::memory_order_relaxed)) {
          local.retries += 1;
          BackoffSleep(args.retry_backoff_ms, attempt, &rng);
          ++attempt;
          continue;
        }
        break;
      }
      if (io_failed) break;
      if (run_timer.Seconds() < args.warmup_s) continue;
      if (!response.ok()) {
        local.errors += 1;
        continue;
      }
      local.latencies_us.push_back(micros);
      switch (response->kind) {
        case WireResponse::Kind::kBusy:
          if (attempt > 0) {
            local.retry_exhausted += 1;
          } else {
            local.busy += 1;
          }
          break;
        case WireResponse::Kind::kErr:
          local.errors += 1;
          break;
        case WireResponse::Kind::kOk:
          if (response->termination == "completed") {
            local.completed += 1;
          } else if (response->termination == "deadline") {
            local.deadline += 1;
          } else if (response->termination == "limit") {
            local.limit += 1;
          } else if (response->termination == "cancelled") {
            local.cancelled += 1;
          } else if (response->termination == "memory_budget") {
            local.memory_budget += 1;
          } else {
            local.errors += 1;
          }
          break;
      }
    }
    SendAll(fd, "QUIT\n");
    ::close(fd);
  };

  std::vector<std::thread> threads;
  threads.reserve(args.connections);
  for (std::size_t c = 0; c < args.connections; ++c) {
    threads.emplace_back(worker, c);
  }
  if (args.requests == 0) {
    while (run_timer.Seconds() < args.duration_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s = run_timer.Seconds();

  // Merge per-connection tallies.
  ConnStats total;
  bool io_error = false;
  for (const ConnStats& s : stats) {
    total.latencies_us.insert(total.latencies_us.end(),
                              s.latencies_us.begin(), s.latencies_us.end());
    total.offered += s.offered;
    total.completed += s.completed;
    total.deadline += s.deadline;
    total.limit += s.limit;
    total.cancelled += s.cancelled;
    total.memory_budget += s.memory_budget;
    total.busy += s.busy;
    total.errors += s.errors;
    total.retries += s.retries;
    total.retry_exhausted += s.retry_exhausted;
    io_error = io_error || s.io_error;
  }
  const LatencySummary latency = SummarizeLatencies(total.latencies_us);
  const double measured_s =
      args.requests == 0 ? std::max(elapsed_s - args.warmup_s, 1e-9)
                         : std::max(elapsed_s, 1e-9);
  const double qps = static_cast<double>(latency.count) / measured_s;

  std::printf("ceci_loadgen: mix=%s connections=%zu zipf=%.2f elapsed=%.1fs\n",
              args.workload.mix.c_str(), args.connections, args.zipf,
              elapsed_s);
  std::printf("offered: %llu\n",
              static_cast<unsigned long long>(total.offered));
  std::printf(
      "requests: %llu (completed %llu, deadline %llu, limit %llu, "
      "cancelled %llu, memory_budget %llu, busy %llu, "
      "retry_exhausted %llu, err %llu)\n",
      static_cast<unsigned long long>(latency.count),
      static_cast<unsigned long long>(total.completed),
      static_cast<unsigned long long>(total.deadline),
      static_cast<unsigned long long>(total.limit),
      static_cast<unsigned long long>(total.cancelled),
      static_cast<unsigned long long>(total.memory_budget),
      static_cast<unsigned long long>(total.busy),
      static_cast<unsigned long long>(total.retry_exhausted),
      static_cast<unsigned long long>(total.errors));
  if (args.retries > 0) {
    std::printf("retries: %llu (max %llu per request, backoff %.0fms base)\n",
                static_cast<unsigned long long>(total.retries),
                static_cast<unsigned long long>(args.retries),
                args.retry_backoff_ms);
  }
  std::printf("qps: %.1f\n", qps);
  std::printf(
      "latency_us: mean=%.0f p50=%llu p95=%llu p99=%llu max=%llu\n",
      latency.mean_us, static_cast<unsigned long long>(latency.p50_us),
      static_cast<unsigned long long>(latency.p95_us),
      static_cast<unsigned long long>(latency.p99_us),
      static_cast<unsigned long long>(latency.max_us));

  if (!args.out.empty()) {
    std::ostringstream command;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command << ' ';
      command << argv[i];
    }
    std::ostringstream entry;
    entry << "{\"label\":\"" << JsonEscape(args.label) << "\",\"mix\":\""
          << args.workload.mix << "\",\"connections\":" << args.connections
          << ",\"zipf\":" << args.zipf << ",\"seed\":" << args.workload.seed
          << ",\"limit\":" << args.limit
          << ",\"deadline_ms\":" << args.deadline_ms
          << ",\"max_retries\":" << args.retries
          << ",\"retry_backoff_ms\":" << args.retry_backoff_ms
          << ",\"retries\":" << total.retries
          << ",\"warmup_s\":" << args.warmup_s
          << ",\"elapsed_s\":" << elapsed_s << ",\"offered\":" << total.offered
          << ",\"requests\":"
          << latency.count << ",\"qps\":" << qps << ",\"latency_us\":{"
          << "\"mean\":" << latency.mean_us << ",\"p50\":" << latency.p50_us
          << ",\"p95\":" << latency.p95_us << ",\"p99\":" << latency.p99_us
          << ",\"max\":" << latency.max_us << "},\"outcomes\":{"
          << "\"completed\":" << total.completed
          << ",\"deadline\":" << total.deadline
          << ",\"limit\":" << total.limit
          << ",\"cancelled\":" << total.cancelled
          << ",\"memory_budget\":" << total.memory_budget
          << ",\"busy\":" << total.busy
          << ",\"retry_exhausted\":" << total.retry_exhausted
          << ",\"error\":" << total.errors
          << "},\"command\":\"" << JsonEscape(command.str()) << "\"}";
    std::FILE* f = std::fopen(args.out.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "out: cannot open %s\n", args.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", entry.str().c_str());
    std::fclose(f);
  }

  return io_error ? 1 : 0;
}
