// ceci_generate — dataset generator for the CECI benchmarks.
//
// Produces the synthetic graph families used throughout the repository
// (Graph500 Kronecker, Erdős–Rényi, Barabási–Albert, the Holme–Kim social
// analog) and writes them in any supported format.
//
//   ceci_generate --family kronecker --scale 16 --edge-factor 10
//                 --labels 100 --out rd.txt --format labeled
//   ceci_generate --family social --n 30000 --attach 12 --out fs.bin
//                 --format csr
//
// Flags:
//   --family F     kronecker | er | ba | social        (required)
//   --out PATH     output file                         (required)
//   --format FMT   edgelist | labeled | csr | csrstore (default: labeled)
//   --n N          vertices (er/ba/social)
//   --m M          edges (er)
//   --attach K     attachment count / cap (ba/social)
//   --scale S      log2 vertices (kronecker)
//   --edge-factor E  edges per vertex (kronecker)
//   --labels L     assign L random labels (0 = unlabeled)
//   --multi-labels K up to K labels per vertex (with --labels)
//   --seed S       RNG seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "gen/kronecker.h"
#include "gen/labels.h"
#include "gen/random_graphs.h"
#include "graph/metrics.h"
#include "graphio/binary_csr.h"
#include "graphio/csr_store.h"
#include "graphio/edge_list.h"

namespace {

using namespace ceci;

struct Args {
  std::string family;
  std::string out;
  std::string format = "labeled";
  std::size_t n = 10000;
  std::size_t m = 50000;
  std::size_t attach = 4;
  int scale = 14;
  int edge_factor = 8;
  std::size_t labels = 0;
  std::size_t multi_labels = 1;
  std::uint64_t seed = 1;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--family" && (v = next())) {
      args->family = v;
    } else if (flag == "--out" && (v = next())) {
      args->out = v;
    } else if (flag == "--format" && (v = next())) {
      args->format = v;
    } else if (flag == "--n" && (v = next())) {
      args->n = std::strtoul(v, nullptr, 10);
    } else if (flag == "--m" && (v = next())) {
      args->m = std::strtoul(v, nullptr, 10);
    } else if (flag == "--attach" && (v = next())) {
      args->attach = std::strtoul(v, nullptr, 10);
    } else if (flag == "--scale" && (v = next())) {
      args->scale = std::atoi(v);
    } else if (flag == "--edge-factor" && (v = next())) {
      args->edge_factor = std::atoi(v);
    } else if (flag == "--labels" && (v = next())) {
      args->labels = std::strtoul(v, nullptr, 10);
    } else if (flag == "--multi-labels" && (v = next())) {
      args->multi_labels = std::strtoul(v, nullptr, 10);
    } else if (flag == "--seed" && (v = next())) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->family.empty() && !args->out.empty();
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (v < w) out << v << " " << w << "\n";
    }
  }
  return out ? Status::Ok() : Status::IoError("write failure");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: ceci_generate --family kronecker|er|ba|social --out PATH\n"
        "         [--format edgelist|labeled|csr|csrstore] [--n N] [--m M]\n"
        "         [--attach K] [--scale S] [--edge-factor E] [--labels L]\n"
        "         [--multi-labels K] [--seed S]\n");
    return 2;
  }

  Graph g;
  if (args.family == "kronecker") {
    KroneckerOptions k;
    k.scale = args.scale;
    k.edge_factor = args.edge_factor;
    k.seed = args.seed;
    g = GenerateKronecker(k);
  } else if (args.family == "er") {
    g = GenerateErdosRenyi(args.n, args.m, args.seed);
  } else if (args.family == "ba") {
    g = GenerateBarabasiAlbert(args.n, args.attach, args.seed);
  } else if (args.family == "social") {
    g = GenerateSocialGraph(args.n, args.attach, args.seed);
  } else {
    std::fprintf(stderr, "unknown --family %s\n", args.family.c_str());
    return 2;
  }

  if (args.labels > 0) {
    g = args.multi_labels > 1
            ? AssignMultiLabels(g, args.labels, args.multi_labels,
                                args.seed + 1)
            : AssignRandomLabels(g, args.labels, args.seed + 1);
  }

  Status st;
  if (args.format == "edgelist") {
    st = WriteEdgeListFile(g, args.out);
  } else if (args.format == "labeled") {
    st = WriteLabeledGraph(g, args.out);
  } else if (args.format == "csr") {
    st = WriteBinaryCsr(g, args.out);
  } else if (args.format == "csrstore") {
    st = WriteCsrStore(g, args.out);
  } else {
    std::fprintf(stderr, "unknown --format %s\n", args.format.c_str());
    return 2;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }

  DegreeStats deg = ComputeDegreeStats(g);
  std::printf("%s  (triangles=%llu, clustering=%.4f, deg skew=%.1f)\n",
              g.Summary().c_str(),
              static_cast<unsigned long long>(CountTriangles(g)),
              GlobalClusteringCoefficient(g), deg.skew);
  std::printf("wrote %s (%s)\n", args.out.c_str(), args.format.c_str());
  return 0;
}
