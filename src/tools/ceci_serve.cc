// ceci_serve — line-protocol TCP server over one data graph.
//
// Loads the data graph, starts a QueryService (shared enumeration pool +
// admission control), and serves the protocol of serve/protocol.h until
// SIGINT/SIGTERM (or --duration-s elapses). Prints exactly one line
//
//   ceci_serve: listening on HOST:PORT
//
// to stdout once ready, so scripts using --port 0 can scrape the
// ephemeral port. With --telemetry-port it additionally prints
//
//   ceci_serve: telemetry on HOST:PORT
//
// and serves GET /metrics (Prometheus), /varz (JSON), /healthz there.
//
//   ceci_serve --data graph.txt --port 0 --pool-threads 4
//
// Flags:
//   --data PATH            data graph file (required)
//   --format FMT           edgelist | labeled | csr      (default: edgelist)
//   --host ADDR            IPv4 listen address     (default: 127.0.0.1)
//   --port N               listen port, 0 = ephemeral    (default: 0)
//   --pool-threads N       shared enumeration pool size  (default: 4)
//   --threads-per-query N  enumeration workers per query (default: 2)
//   --max-concurrent N     queries executing at once     (default: 2)
//   --max-queue N          waiting queries before BUSY   (default: 16)
//   --degrade-depth N      waiting queries before degraded admission
//                          (default: never)
//   --default-deadline-ms N  deadline for requests without one, 0 = none
//   --degraded-deadline-ms N deadline ceiling for degraded queries
//   --degraded-limit N     embedding-limit ceiling for degraded queries
//   --max-connections N    concurrent client connections (default: 64)
//   --no-cache             rebuild the index per request (no CachedMatcher)
//   --index PATH           pre-warm the cache with a prebuilt flat index
//                          image (ceci_query --save-index); mmap'd
//                          read-only so concurrent workers and server
//                          processes share one physical copy. Repeatable;
//                          incompatible with --no-cache.
//   --no-mmap              load --index images by copying instead of mmap
//   --duration-s N         exit cleanly after N seconds, 0 = until signal
//   --telemetry-port N     serve /metrics /varz /healthz on this port
//                          (0 = ephemeral; omit the flag to disable)
//   --access-log PATH      append one JSONL record per request
//   --slo-availability-target F  availability objective  (default: 0.999)
//   --slo-latency-ms N     latency objective threshold, 0 = disabled
//   --slo-latency-target F fraction under the threshold  (default: 0.99)
//   --help                 print this help and exit 0
//
// Exit codes: 0 clean shutdown, 1 I/O error, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graphio/binary_csr.h"
#include "graphio/edge_list.h"
#include "serve/query_service.h"
#include "serve/tcp_server.h"
#include "telemetry/access_log.h"
#include "telemetry/http_server.h"
#include "telemetry/server_telemetry.h"
#include "util/metrics_registry.h"
#include "util/timer.h"

namespace {

using namespace ceci;

std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct Args {
  std::string data;
  std::string format = "edgelist";
  std::string host = "127.0.0.1";
  int port = 0;
  ServiceOptions service;
  std::vector<std::string> indexes;
  bool use_mmap = true;
  std::size_t max_connections = 64;
  double duration_s = 0.0;
  /// -1 = telemetry HTTP endpoint disabled; 0 = ephemeral port.
  int telemetry_port = -1;
  std::string access_log;
  SloConfig slo;
  bool help = false;
};

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --data PATH [--format edgelist|labeled|csr]\n"
               "          [--host ADDR] [--port N]\n"
               "          [--pool-threads N] [--threads-per-query N]\n"
               "          [--max-concurrent N] [--max-queue N]\n"
               "          [--degrade-depth N] [--default-deadline-ms N]\n"
               "          [--degraded-deadline-ms N] [--degraded-limit N]\n"
               "          [--max-connections N] [--no-cache]\n"
               "          [--index PATH]... [--no-mmap]\n"
               "          [--duration-s N] [--telemetry-port N]\n"
               "          [--access-log PATH] [--slo-availability-target F]\n"
               "          [--slo-latency-ms N] [--slo-latency-target F]\n"
               "          [--help]\n"
               "protocol: MATCH <pattern> | MATCHX k=v,... <pattern> | "
               "STATS | PING | QUIT\n"
               "exit codes: 0 clean shutdown, 1 I/O error, 2 usage\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--help") {
      args->help = true;
      return true;
    } else if (flag == "--data") {
      const char* v = next();
      if (!v) return false;
      args->data = v;
    } else if (flag == "--format") {
      const char* v = next();
      if (!v) return false;
      args->format = v;
    } else if (flag == "--host") {
      const char* v = next();
      if (!v) return false;
      args->host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (!v) return false;
      args->port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--pool-threads") {
      const char* v = next();
      if (!v) return false;
      args->service.pool_threads = std::strtoul(v, nullptr, 10);
    } else if (flag == "--threads-per-query") {
      const char* v = next();
      if (!v) return false;
      args->service.threads_per_query = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-concurrent") {
      const char* v = next();
      if (!v) return false;
      args->service.limits.max_concurrent = std::strtoul(v, nullptr, 10);
      if (args->service.limits.max_concurrent == 0) return false;
    } else if (flag == "--max-queue") {
      const char* v = next();
      if (!v) return false;
      args->service.limits.max_queue = std::strtoul(v, nullptr, 10);
    } else if (flag == "--degrade-depth") {
      const char* v = next();
      if (!v) return false;
      args->service.limits.degrade_depth = std::strtoul(v, nullptr, 10);
    } else if (flag == "--default-deadline-ms") {
      const char* v = next();
      if (!v) return false;
      args->service.limits.default_deadline_seconds =
          std::strtod(v, nullptr) / 1e3;
    } else if (flag == "--degraded-deadline-ms") {
      const char* v = next();
      if (!v) return false;
      args->service.limits.degraded_deadline_seconds =
          std::strtod(v, nullptr) / 1e3;
    } else if (flag == "--degraded-limit") {
      const char* v = next();
      if (!v) return false;
      args->service.limits.degraded_limit = std::strtoull(v, nullptr, 10);
    } else if (flag == "--max-connections") {
      const char* v = next();
      if (!v) return false;
      args->max_connections = std::strtoul(v, nullptr, 10);
      if (args->max_connections == 0) return false;
    } else if (flag == "--no-cache") {
      args->service.cache_indexes = false;
    } else if (flag == "--index") {
      const char* v = next();
      if (!v) return false;
      args->indexes.emplace_back(v);
    } else if (flag == "--no-mmap") {
      args->use_mmap = false;
    } else if (flag == "--duration-s") {
      const char* v = next();
      if (!v) return false;
      args->duration_s = std::strtod(v, nullptr);
    } else if (flag == "--telemetry-port") {
      const char* v = next();
      if (!v) return false;
      args->telemetry_port = static_cast<int>(std::strtol(v, nullptr, 10));
      if (args->telemetry_port < 0) return false;
    } else if (flag == "--access-log") {
      const char* v = next();
      if (!v) return false;
      args->access_log = v;
    } else if (flag == "--slo-availability-target") {
      const char* v = next();
      if (!v) return false;
      args->slo.availability_target = std::strtod(v, nullptr);
    } else if (flag == "--slo-latency-ms") {
      const char* v = next();
      if (!v) return false;
      args->slo.latency_threshold_us = std::strtod(v, nullptr) * 1e3;
    } else if (flag == "--slo-latency-target") {
      const char* v = next();
      if (!v) return false;
      args->slo.latency_target = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (!args->indexes.empty() && !args->service.cache_indexes) {
    std::fprintf(stderr, "--index requires the cache (drop --no-cache)\n");
    return false;
  }
  return !args->data.empty();
}

Result<Graph> LoadData(const Args& args) {
  if (args.format == "edgelist") return ReadEdgeList(args.data);
  if (args.format == "labeled") return ReadLabeledGraph(args.data);
  if (args.format == "csr") return ReadBinaryCsr(args.data);
  return Status::InvalidArgument("unknown --format " + args.format);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(stderr, argv[0]);
    return 2;
  }
  if (args.help) {
    Usage(stdout, argv[0]);
    return 0;
  }

  auto data = LoadData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "data graph: %s\n", data.status().ToString().c_str());
    return 1;
  }

  if (!args.access_log.empty()) {
    auto log = AccessLog::Open(args.access_log);
    if (!log.ok()) {
      std::fprintf(stderr, "access log: %s\n",
                   log.status().ToString().c_str());
      return 1;
    }
    args.service.access_log = std::move(log).value();
  }

  QueryService service(*data, args.service);
  for (const std::string& path : args.indexes) {
    Status installed = service.InstallPrebuiltIndex(path, args.use_mmap);
    if (!installed.ok()) {
      std::fprintf(stderr, "index %s: %s\n", path.c_str(),
                   installed.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "ceci_serve: installed prebuilt index %s\n",
                 path.c_str());
  }
  // Telemetry always runs (STATS reports uptime/build/windows whether or
  // not the HTTP endpoint is enabled); the scrape listener is opt-in.
  ServerTelemetryOptions telemetry_options;
  telemetry_options.slo = args.slo;
  ServerTelemetry telemetry(MetricsRegistry::Global(), telemetry_options);
  telemetry.Start();

  TcpServerOptions tcp;
  tcp.host = args.host;
  tcp.port = args.port;
  tcp.max_connections = args.max_connections;
  tcp.telemetry = &telemetry;
  TcpServer server(service, tcp);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ceci_serve: listening on %s:%d\n", args.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::unique_ptr<TelemetryHttpServer> scrape_server;
  if (args.telemetry_port >= 0) {
    TelemetryHttpOptions http;
    http.host = args.host;
    http.port = args.telemetry_port;
    scrape_server = std::make_unique<TelemetryHttpServer>(telemetry, http);
    Status scrape_started = scrape_server->Start();
    if (!scrape_started.ok()) {
      std::fprintf(stderr, "telemetry: %s\n",
                   scrape_started.ToString().c_str());
      return 1;
    }
    std::printf("ceci_serve: telemetry on %s:%d\n", args.host.c_str(),
                scrape_server->port());
    std::fflush(stdout);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  Timer uptime;
  while (g_stop == 0) {
    if (args.duration_s > 0.0 && uptime.Seconds() >= args.duration_s) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (scrape_server != nullptr) scrape_server->Stop();
  server.Stop();
  service.Shutdown();
  telemetry.Stop();
  std::printf("ceci_serve: shut down after %.1fs\n", uptime.Seconds());
  return 0;
}
