// ceci_top — live console view of a running ceci_serve.
//
// Polls GET /varz on the server's telemetry port (--telemetry-port on
// ceci_serve) and redraws a compact dashboard every interval: QPS and
// latency percentiles per window (10s/1m/5m), the admission mix, SLO
// burn rates, and pool/cache occupancy. Think `top` for the query
// service — no dependencies beyond a TCP socket.
//
//   ceci_top --port 7100            # poll 127.0.0.1:7100 every 2s
//
// Flags:
//   --host ADDR      telemetry address        (default: 127.0.0.1)
//   --port N         telemetry port (required)
//   --interval-s F   seconds between polls    (default: 2)
//   --iterations N   exit after N frames, 0 = until ^C (default: 0)
//   --no-clear       append frames instead of redrawing (for logs/tests)
//   --help           print this help and exit 0
//
// Exit codes: 0 clean exit, 1 connection/parse error, 2 usage error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "util/json_parser.h"
#include "util/timer.h"

namespace {

using namespace ceci;

std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  double interval_s = 2.0;
  std::uint64_t iterations = 0;
  bool clear = true;
  bool help = false;
};

void Usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --port N [--host ADDR] [--interval-s F]\n"
               "          [--iterations N] [--no-clear] [--help]\n"
               "polls GET /varz on a ceci_serve telemetry port and renders\n"
               "a live dashboard (QPS, latency, admission mix, SLO burn)\n"
               "exit codes: 0 clean exit, 1 connection or parse error, "
               "2 usage\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (flag == "--help") {
      args->help = true;
      return true;
    } else if (flag == "--host") {
      const char* v = next();
      if (!v) return false;
      args->host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (!v) return false;
      args->port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--interval-s") {
      const char* v = next();
      if (!v) return false;
      args->interval_s = std::strtod(v, nullptr);
      if (args->interval_s <= 0.0) return false;
    } else if (flag == "--iterations") {
      const char* v = next();
      if (!v) return false;
      args->iterations = std::strtoull(v, nullptr, 10);
    } else if (flag == "--no-clear") {
      args->clear = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return args->port > 0;
}

/// One HTTP GET over a fresh connection; returns the response body, or
/// an error Status on connect/read problems.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // lint: raw-socket TCP client
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IoError("cannot connect to " + host + ":" +
                           std::to_string(port));
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  // The server answers Connection: close, so read to EOF.
  std::string response;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("recv failed");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::Corruption("malformed HTTP response");
  }
  if (response.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::IoError("HTTP error: " +
                           response.substr(0, response.find('\r')));
  }
  return response.substr(body + 4);
}

double Num(const JsonValue& root, const char* path) {
  const JsonValue* v = root.Find(path);
  return v == nullptr ? 0.0 : v->AsDouble();
}

std::uint64_t UNum(const JsonValue& root, const char* path) {
  const JsonValue* v = root.Find(path);
  return v == nullptr ? 0 : v->AsUint();
}

/// Registry metric names contain dots, so they are plain object keys —
/// Find()'s dotted-path split would mangle them.
std::uint64_t Metric(const JsonValue& root, const char* section,
                     const char* name) {
  const JsonValue* sec = root.Get(section);
  const JsonValue* v = sec == nullptr ? nullptr : sec->Get(name);
  return v == nullptr ? 0 : v->AsUint();
}

std::string BuildField(const JsonValue& varz, const char* key) {
  const JsonValue* build = varz.Get("build");
  const JsonValue* v = build == nullptr ? nullptr : build->Get(key);
  return v == nullptr ? "?" : v->AsString();
}

void RenderFrame(const JsonValue& varz) {
  std::printf("ceci_top — ceci_serve %s (%s), up %.0fs\n",
              BuildField(varz, "version").c_str(),
              BuildField(varz, "compiler").c_str(), Num(varz, "uptime_s"));

  std::printf("\n%-6s %10s %8s %9s %9s %9s %10s\n", "window", "qps", "err%",
              "p50_us", "p90_us", "p99_us", "requests");
  for (const char* window : {"10s", "1m", "5m"}) {
    const std::string base = std::string("windows.") + window;
    std::printf("%-6s %10.1f %8.2f %9llu %9llu %9llu %10llu\n", window,
                Num(varz, (base + ".qps").c_str()),
                Num(varz, (base + ".error_rate").c_str()) * 100.0,
                static_cast<unsigned long long>(
                    UNum(varz, (base + ".p50_us").c_str())),
                static_cast<unsigned long long>(
                    UNum(varz, (base + ".p90_us").c_str())),
                static_cast<unsigned long long>(
                    UNum(varz, (base + ".p99_us").c_str())),
                static_cast<unsigned long long>(
                    UNum(varz, (base + ".submitted").c_str())));
  }

  std::printf(
      "\nadmission (1m): accepted %llu  degraded %llu  rejected %llu  "
      "expired %llu\n",
      static_cast<unsigned long long>(UNum(varz, "windows.1m.accepted")),
      static_cast<unsigned long long>(UNum(varz, "windows.1m.degraded")),
      static_cast<unsigned long long>(UNum(varz, "windows.1m.rejected")),
      static_cast<unsigned long long>(
          UNum(varz, "windows.1m.expired_in_queue")));

  std::printf(
      "slo burn: availability 1m %.2fx / 5m %.2fx   latency 1m %.2fx / "
      "5m %.2fx\n",
      Num(varz, "windows.1m.availability_burn"),
      Num(varz, "windows.5m.availability_burn"),
      Num(varz, "windows.1m.latency_burn"),
      Num(varz, "windows.5m.latency_burn"));

  std::printf(
      "service: active %llu  queue %llu  connections %llu  "
      "cache hits/misses %llu/%llu\n",
      static_cast<unsigned long long>(
          Metric(varz, "gauges", "ceci.serve.active")),
      static_cast<unsigned long long>(
          Metric(varz, "gauges", "ceci.serve.queue_depth")),
      static_cast<unsigned long long>(
          Metric(varz, "gauges", "ceci.serve.live_connections")),
      static_cast<unsigned long long>(
          Metric(varz, "counters", "ceci.cache.hits")),
      static_cast<unsigned long long>(
          Metric(varz, "counters", "ceci.cache.misses")));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(stderr, argv[0]);
    return 2;
  }
  if (args.help) {
    Usage(stdout, argv[0]);
    return 0;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::uint64_t frames = 0;
  while (g_stop == 0) {
    auto body = HttpGet(args.host, args.port, "/varz");
    if (!body.ok()) {
      std::fprintf(stderr, "ceci_top: %s\n", body.status().ToString().c_str());
      return 1;
    }
    auto varz = ParseJson(*body);
    if (!varz.ok()) {
      std::fprintf(stderr, "ceci_top: bad /varz: %s\n",
                   varz.status().ToString().c_str());
      return 1;
    }
    if (args.clear) std::printf("\x1b[H\x1b[2J");
    RenderFrame(*varz);
    std::fflush(stdout);
    ++frames;
    if (args.iterations > 0 && frames >= args.iterations) break;
    // Sleep in small steps so ^C exits promptly.
    Timer pause;
    while (g_stop == 0 && pause.Seconds() < args.interval_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}
