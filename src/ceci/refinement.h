// Reverse-BFS refinement and cardinality computation (paper §3.3, Alg. 2).
//
// Candidates are revisited from the leaves of the query tree up to the
// root. For each (query vertex u, candidate v):
//
//   cardinality(u, v) = Π over tree children u_c of
//                       Σ over v_c ∈ TE[u_c].Find(v), v_c alive,
//                       cardinality(u_c, v_c)
//
// with leaves at 1, and cardinality forced to 0 when v is missing from the
// value union of any incoming NTE list. Zero-cardinality candidates are
// guaranteed to match no embedding and are pruned; the final compaction
// removes dead keys/values from every list. The root's cardinalities are
// the per-embedding-cluster workload bounds used by extreme-cluster
// decomposition (§4.3).
#ifndef CECI_CECI_REFINEMENT_H_
#define CECI_CECI_REFINEMENT_H_

#include <cstdint>

#include "ceci/ceci_index.h"
#include "ceci/query_tree.h"
#include "util/budget.h"

namespace ceci {

struct RefineStats {
  /// Candidates removed (cardinality fell to zero).
  std::uint64_t pruned_candidates = 0;
  /// Candidate edges removed during the compaction sweep.
  std::uint64_t pruned_edges = 0;
  /// Sum of pivot cardinalities (upper bound on total embeddings).
  Cardinality total_cardinality = 0;
  double seconds = 0.0;
};

/// Refines `index` in place (reverse matching order) and fills per-candidate
/// cardinalities. `data_num_vertices` sizes the internal scratch maps.
/// `stats` may be null. When `pruned_per_vertex` is non-null it is resized
/// to the query vertex count and receives, per query vertex u, the number
/// of u's candidates whose cardinality fell to zero (profiler support;
/// the totals already counted in `stats` are unaffected). `budget`, when
/// non-null, is polled once per reverse-BFS vertex and per tree child
/// scanned; on exhaustion refinement stops early, skipping the compaction
/// sweep — the index is then semi-refined and must not be enumerated
/// (the matcher reports the budget's TerminationReason instead).
void RefineCeci(const QueryTree& tree, std::size_t data_num_vertices,
                CeciIndex* index, RefineStats* stats,
                std::vector<std::uint64_t>* pruned_per_vertex = nullptr,
                BudgetTracker* budget = nullptr);

}  // namespace ceci

#endif  // CECI_CECI_REFINEMENT_H_
