#include "ceci/candidate_list.h"

#include <algorithm>

#include "util/check.h"
#include "util/heap_bytes.h"
#include "util/logging.h"

namespace ceci {

void CandidateList::Append(VertexId key, std::vector<VertexId> values) {
  CECI_DCHECK(!frozen_) << "cannot mutate a frozen candidate list";
  CECI_DCHECK(keys_.empty() || keys_.back() < key)
      << "keys must be appended in ascending order";
  CECI_DCHECK(std::adjacent_find(values.begin(), values.end(),
                                 std::greater_equal<VertexId>()) ==
              values.end())
      << "value sets must be strictly sorted";
  keys_.push_back(key);
  values_.push_back(std::move(values));
}

std::span<const VertexId> CandidateList::Find(VertexId key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return {};
  const std::size_t idx = static_cast<std::size_t>(it - keys_.begin());
  if (frozen_) {
    return {flat_values_.data() + flat_offsets_[idx],
            flat_values_.data() + flat_offsets_[idx + 1]};
  }
  return values_[idx];
}

void CandidateList::Freeze() {
  if (frozen_) return;
  flat_offsets_.clear();
  flat_offsets_.reserve(keys_.size() + 1);
  flat_values_.clear();
  flat_values_.reserve(TotalValues());
  flat_offsets_.push_back(0);
  for (const auto& vals : values_) {
    flat_values_.insert(flat_values_.end(), vals.begin(), vals.end());
    flat_offsets_.push_back(static_cast<std::uint32_t>(flat_values_.size()));
  }
  values_.clear();
  values_.shrink_to_fit();
  frozen_ = true;
}

std::size_t CandidateList::TotalValues() const {
  if (frozen_) return flat_values_.size();
  std::size_t total = 0;
  for (const auto& v : values_) total += v.size();
  return total;
}

std::vector<VertexId> CandidateList::UnionOfValues() const {
  std::vector<VertexId> out;
  if (frozen_) {
    out = flat_values_;
  } else {
    for (const auto& v : values_) out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t CandidateList::Prune(
    const std::function<bool(VertexId)>& keep_key,
    const std::function<bool(VertexId)>& keep_value) {
  CECI_CHECK(!frozen_) << "cannot prune a frozen candidate list";
  std::size_t removed = 0;
  std::size_t write = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (!keep_key(keys_[i])) {
      removed += values_[i].size();
      continue;
    }
    auto& vals = values_[i];
    std::size_t before = vals.size();
    vals.erase(std::remove_if(vals.begin(), vals.end(),
                              [&](VertexId v) { return !keep_value(v); }),
               vals.end());
    removed += before - vals.size();
    if (vals.empty()) continue;
    if (write != i) {
      keys_[write] = keys_[i];
      values_[write] = std::move(vals);
    }
    ++write;
  }
  keys_.resize(write);
  values_.resize(write);
  return removed;
}

std::size_t CandidateList::MemoryBytes() const {
  std::size_t bytes = keys_.size() * sizeof(VertexId);
  if (frozen_) {
    bytes += flat_offsets_.size() * sizeof(std::uint32_t) +
             flat_values_.size() * sizeof(VertexId);
    return bytes;
  }
  for (const auto& v : values_) {
    bytes += sizeof(std::vector<VertexId>) + v.size() * sizeof(VertexId);
  }
  return bytes;
}

std::size_t CandidateList::MeasuredHeapBytes() const {
  std::size_t bytes = MeasuredVectorBytes(keys_);
  bytes += MeasuredVectorBytes(flat_offsets_);
  bytes += MeasuredVectorBytes(flat_values_);
  bytes += MeasuredVectorBytes(values_);
  for (const auto& v : values_) bytes += MeasuredVectorBytes(v);
  return bytes;
}

void CandidateList::clear() {
  keys_.clear();
  values_.clear();
  flat_offsets_.clear();
  flat_values_.clear();
  frozen_ = false;
}

}  // namespace ceci
