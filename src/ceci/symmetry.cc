#include "ceci/symmetry.h"

#include <algorithm>

namespace ceci {
namespace {

// Backtracking enumerator for Aut(G_q). Queries are small (benchmark
// queries have 3-50 vertices and labels prune hard), but a budget guards
// against pathological symmetric inputs.
class AutomorphismSearch {
 public:
  explicit AutomorphismSearch(const Graph& query) : query_(query) {}

  // Returns false if the budget was exhausted.
  bool Run(std::vector<std::vector<VertexId>>* automorphisms) {
    const std::size_t n = query_.num_vertices();
    mapping_.assign(n, kInvalidVertex);
    used_.assign(n, 0);
    automorphisms_ = automorphisms;
    budget_ok_ = true;
    Extend(0);
    return budget_ok_;
  }

 private:
  static constexpr std::size_t kBudget = 1 << 20;

  bool Feasible(VertexId u, VertexId image) {
    if (query_.degree(u) != query_.degree(image)) return false;
    auto lu = query_.labels(u);
    auto li = query_.labels(image);
    if (!std::equal(lu.begin(), lu.end(), li.begin(), li.end())) return false;
    // Edges to already-mapped vertices must be preserved both ways; equal
    // degrees make one-directional checking sufficient per mapped pair.
    for (VertexId w : query_.neighbors(u)) {
      if (mapping_[w] != kInvalidVertex &&
          !query_.HasEdge(image, mapping_[w])) {
        return false;
      }
    }
    return true;
  }

  void Extend(VertexId u) {
    if (!budget_ok_) return;
    if (++steps_ > kBudget) {
      budget_ok_ = false;
      return;
    }
    const std::size_t n = query_.num_vertices();
    if (u == n) {
      automorphisms_->push_back(mapping_);
      return;
    }
    for (VertexId image = 0; image < n; ++image) {
      if (used_[image] || !Feasible(u, image)) continue;
      mapping_[u] = image;
      used_[image] = 1;
      Extend(u + 1);
      mapping_[u] = kInvalidVertex;
      used_[image] = 0;
      if (!budget_ok_) return;
    }
  }

  const Graph& query_;
  std::vector<VertexId> mapping_;
  std::vector<char> used_;
  std::vector<std::vector<VertexId>>* automorphisms_ = nullptr;
  std::size_t steps_ = 0;
  bool budget_ok_ = true;
};

}  // namespace

SymmetryConstraints SymmetryConstraints::Compute(const Graph& query) {
  const std::size_t n = query.num_vertices();
  std::vector<std::vector<VertexId>> autos;
  AutomorphismSearch search(query);
  if (!search.Run(&autos)) {
    // Budget exhausted: disable breaking (safe, just redundant listing).
    SymmetryConstraints none = None(n);
    none.automorphism_count_ = 0;
    return none;
  }

  SymmetryConstraints out;
  out.automorphism_count_ = autos.size();

  // Grochow–Kellis: fix vertices in increasing id order. At each step the
  // current group is the pointwise stabilizer of all previously fixed
  // vertices; emit v < w for every w in v's orbit and keep only
  // permutations fixing v.
  std::vector<std::vector<VertexId>> group = std::move(autos);
  for (VertexId v = 0; v < n && group.size() > 1; ++v) {
    std::vector<char> in_orbit(n, 0);
    for (const auto& perm : group) in_orbit[perm[v]] = 1;
    std::size_t orbit_size = 0;
    for (VertexId w = 0; w < n; ++w) orbit_size += in_orbit[w];
    if (orbit_size > 1) {
      for (VertexId w = 0; w < n; ++w) {
        if (w != v && in_orbit[w]) {
          out.constraints_.push_back(Constraint{v, w});
        }
      }
    }
    // Restrict to the stabilizer of v.
    std::vector<std::vector<VertexId>> stab;
    for (auto& perm : group) {
      if (perm[v] == v) stab.push_back(std::move(perm));
    }
    group = std::move(stab);
  }

  out.IndexConstraints(n);
  return out;
}

SymmetryConstraints SymmetryConstraints::None(std::size_t num_query_vertices) {
  SymmetryConstraints out;
  out.IndexConstraints(num_query_vertices);
  return out;
}

void SymmetryConstraints::IndexConstraints(std::size_t n) {
  lower_than_.assign(n, {});
  higher_than_.assign(n, {});
  for (const Constraint& c : constraints_) {
    lower_than_[c.larger].push_back(c.smaller);
    higher_than_[c.smaller].push_back(c.larger);
  }
}

}  // namespace ceci
