// QueryProfile: per-query EXPLAIN data collected during a profiled Match().
//
// The paper's central claims are per-query structural facts — filter
// pruning power (§3.2), CECI compactness (§3.4, Table 2), and cluster
// workload balance under ST/CGD/FGD and β-decomposition (§4.2–4.3). The
// process-cumulative metrics registry cannot expose any of them for a
// single query; a QueryProfile can. It records, for one Match() call:
//
//  * per-query-vertex candidate counts after each pipeline stage
//    (LF/DF/NLCF filtering → empty-key cascade → reverse-BFS refinement)
//    with the filter rejection counts that produced them,
//  * measured index bytes per query vertex, broken down by TE candidate
//    list, NTE candidate lists, and the candidate/cardinality arrays
//    (a MemoryFootprint() walk — Table 2 from measurement, not estimate),
//  * embedding-cluster and work-unit cardinality distributions with skew
//    statistics (max/mean, Gini) before and after extreme-cluster
//    decomposition,
//  * per-worker busy time, work-unit pull counts, and occupancy against
//    the enumeration wall clock.
//
// Profiling is opt-in via MatchOptions::profile and costs nothing when
// off: no per-candidate instrumentation exists; every profiled quantity
// is either a delta of counters the pipeline already maintains or a
// read-only walk over structures it already built (same discipline as
// TraceSpan). Surfaced by `ceci_query --explain`, the `profile` block of
// `--metrics-json`, and bench sidecars.
#ifndef CECI_CECI_PROFILER_H_
#define CECI_CECI_PROFILER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"

namespace ceci {

class JsonWriter;
struct MatchStats;

/// Skew statistics of a workload distribution (cluster or work-unit
/// cardinalities). `max_over_mean` is the paper's imbalance signal for
/// Figs. 11–12 (1.0 = perfectly balanced); `gini` summarizes the whole
/// distribution (0 = equal shares, → 1 = one unit carries everything).
struct SkewSummary {
  std::size_t count = 0;
  Cardinality total = 0;
  Cardinality max = 0;
  double mean = 0.0;
  double max_over_mean = 0.0;
  double gini = 0.0;

  static SkewSummary Of(std::span<const Cardinality> values);
};

/// One query vertex's pipeline trajectory and index footprint.
struct VertexProfile {
  VertexId u = 0;
  std::size_t order_position = 0;

  // Candidate counts after each pipeline stage (§3.2 → §3.3). For the
  // root, `candidates_filtered` is the initial pivot scan.
  std::size_t candidates_filtered = 0;  // after LF/DF/NLCF TE expansion
  std::size_t candidates_built = 0;     // after the empty-key cascades
  std::size_t candidates_refined = 0;   // after reverse-BFS refinement

  // Filter rejections while expanding this vertex's TE frontier.
  std::uint64_t rejected_label = 0;
  std::uint64_t rejected_degree = 0;
  std::uint64_t rejected_nlc = 0;
  // Candidates of this vertex pruned by refinement (cardinality hit 0).
  std::uint64_t refine_pruned = 0;

  // Measured index footprint of this vertex's slice (Table 2 evidence).
  std::size_t te_keys = 0;
  std::size_t te_edges = 0;
  std::size_t te_bytes = 0;
  std::size_t nte_lists = 0;
  std::size_t nte_edges = 0;
  std::size_t nte_bytes = 0;
  std::size_t candidate_bytes = 0;  // candidates + cardinalities arrays

  // Backtracking calls that expanded this matching-order position
  // (Fig. 18 per-level; the leaf-count shortcut does not recurse, so the
  // final position reads 0 under that fast path).
  std::uint64_t recursive_calls = 0;

  /// Fraction of filtered candidates that refinement kept (1.0 = none
  /// pruned after build); 0 when the vertex never had candidates.
  double RefineSurvival() const {
    return candidates_built == 0
               ? 0.0
               : static_cast<double>(candidates_refined) /
                     static_cast<double>(candidates_built);
  }
};

/// One enumeration worker's occupancy record.
struct WorkerProfile {
  std::size_t worker = 0;
  double busy_seconds = 0.0;   // thread CPU time inside the worker loop
  std::uint64_t units = 0;     // work units pulled/executed
};

/// The complete per-query profile. Plain data, owned by MatchResult.
struct QueryProfile {
  /// Per-vertex records in matching order.
  std::vector<VertexProfile> vertices;

  // Index totals from the MemoryFootprint() walk (sum over vertices).
  std::size_t index_bytes = 0;
  std::size_t te_bytes = 0;
  std::size_t nte_bytes = 0;
  std::size_t candidate_bytes = 0;

  /// Embedding-cluster cardinalities (pivot workloads, §4.2) before
  /// decomposition, and work-unit cardinalities after (§4.3). Under
  /// ST/CGD no decomposition runs and the two coincide per cluster.
  SkewSummary clusters;
  SkewSummary work_units;

  /// Per-worker occupancy; `enumerate_wall_seconds` is the phase wall
  /// clock the busy times are measured against.
  std::vector<WorkerProfile> workers;
  double enumerate_wall_seconds = 0.0;

  /// Mean busy/wall fraction across workers (0 when nothing ran).
  double Occupancy() const;
};

/// Appends the profile as a JSON object value (the caller positions the
/// writer). Schema documented in docs/observability.md.
void AppendQueryProfileJson(const QueryProfile& profile, JsonWriter* writer);

/// Renders the human-readable EXPLAIN report printed by
/// `ceci_query --explain`: one row per query vertex plus index, cluster,
/// and worker summaries. `stats` supplies the phase timings and the
/// theoretical index bound for context.
std::string FormatExplain(const QueryProfile& profile,
                          const MatchStats& stats);

}  // namespace ceci

#endif  // CECI_CECI_PROFILER_H_
