#include "ceci/matching_order.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace ceci {
namespace {

// Greedy frontier order: repeatedly pick, among tree vertices whose parent
// is already placed, the one minimizing candidate_count / (1 + back edges
// to placed vertices). Selective vertices with many back-connections come
// early, limiting intermediate result sizes.
std::vector<VertexId> EdgeRankedOrder(
    const Graph& query, const QueryTree& tree,
    const std::vector<std::size_t>& counts) {
  const std::size_t n = query.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  std::vector<char> available(n, 0);

  order.push_back(tree.root());
  placed[tree.root()] = 1;
  for (VertexId c : tree.children(tree.root())) available[c] = 1;

  while (order.size() < n) {
    VertexId best = kInvalidVertex;
    double best_score = std::numeric_limits<double>::infinity();
    for (VertexId u = 0; u < n; ++u) {
      if (!available[u]) continue;
      std::size_t back_edges = 0;
      for (VertexId w : query.neighbors(u)) back_edges += placed[w];
      double score = static_cast<double>(counts[u]) /
                     static_cast<double>(1 + back_edges);
      if (score < best_score ||
          (score == best_score && (best == kInvalidVertex || u < best))) {
        best_score = score;
        best = u;
      }
    }
    CECI_CHECK(best != kInvalidVertex) << "query tree frontier empty";
    order.push_back(best);
    placed[best] = 1;
    available[best] = 0;
    for (VertexId c : tree.children(best)) available[c] = 1;
  }
  return order;
}

// Path-ranked order (TurboIso-style): score each subtree by the cheapest
// root-to-leaf candidate-count product inside it, then emit a DFS pre-order
// that visits cheaper subtrees first. Pre-order is a topological order of
// the tree.
std::vector<VertexId> PathRankedOrder(
    const QueryTree& tree, const std::vector<std::size_t>& counts) {
  const std::size_t n = counts.size();
  std::vector<double> path_score(n, 0.0);
  // Bottom-up over the BFS order reversed: leaves first.
  const auto& bfs = tree.bfs_order();
  for (auto it = bfs.rbegin(); it != bfs.rend(); ++it) {
    VertexId u = *it;
    double self = static_cast<double>(std::max<std::size_t>(counts[u], 1));
    auto kids = tree.children(u);
    if (kids.empty()) {
      path_score[u] = self;
    } else {
      double best = std::numeric_limits<double>::infinity();
      for (VertexId c : kids) best = std::min(best, path_score[c]);
      path_score[u] = self * best;
    }
  }
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> stack = {tree.root()};
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    std::vector<VertexId> kids(tree.children(u).begin(),
                               tree.children(u).end());
    // Descending so the cheapest child is popped (visited) first.
    std::sort(kids.begin(), kids.end(), [&](VertexId a, VertexId b) {
      if (path_score[a] != path_score[b]) {
        return path_score[a] > path_score[b];
      }
      return a > b;
    });
    for (VertexId c : kids) stack.push_back(c);
  }
  return order;
}

}  // namespace

std::string OrderStrategyName(OrderStrategy s) {
  switch (s) {
    case OrderStrategy::kBfs:
      return "bfs";
    case OrderStrategy::kEdgeRanked:
      return "edge-ranked";
    case OrderStrategy::kPathRanked:
      return "path-ranked";
  }
  return "?";
}

std::vector<VertexId> ComputeMatchingOrder(
    const Graph& query, const QueryTree& tree,
    const std::vector<std::size_t>& candidate_counts,
    OrderStrategy strategy) {
  switch (strategy) {
    case OrderStrategy::kBfs:
      return tree.bfs_order();
    case OrderStrategy::kEdgeRanked:
      return EdgeRankedOrder(query, tree, candidate_counts);
    case OrderStrategy::kPathRanked:
      return PathRankedOrder(tree, candidate_counts);
  }
  return tree.bfs_order();
}

}  // namespace ceci
