#include "ceci/extreme_cluster.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ceci {
namespace {

class Decomposer {
 public:
  Decomposer(const Graph& data, const QueryTree& tree, IndexView index,
             const EnumOptions& enum_options, Cardinality threshold,
             std::vector<WorkUnit>* out)
      : tree_(tree),
        index_(index),
        threshold_(threshold),
        out_(out),
        helper_(data, tree, index, enum_options) {
    mapping_.assign(tree.num_vertices(), kInvalidVertex);
  }

  // Algorithm 3's prepare_work: extend the prefix at the next matching
  // order position, splitting the estimated workload proportionally to the
  // extensions' cardinalities.
  void Split(std::vector<VertexId>* prefix, Cardinality workload) {
    const auto& order = tree_.matching_order();
    if (prefix->size() == order.size()) {
      // Fully instantiated embedding; emit as a trivial unit.
      out_->push_back(WorkUnit{*prefix, workload});
      return;
    }
    const VertexId u_next = order[prefix->size()];
    std::vector<VertexId> extensions;
    helper_.CollectExtensions(mapping_, u_next, &extensions);
    if (extensions.empty()) return;  // prefix extends to no embedding

    Cardinality total = 0;
    std::vector<Cardinality> cards(extensions.size(), 0);
    for (std::size_t i = 0; i < extensions.size(); ++i) {
      cards[i] = index_.CardinalityOf(u_next, extensions[i]);
      total = SaturatingAdd(total, cards[i]);
    }
    if (total == 0) return;

    for (std::size_t i = 0; i < extensions.size(); ++i) {
      if (cards[i] == 0) continue;
      // myWork = card(u_next, v') / total × workload, in floating point to
      // dodge saturation artifacts; clamp to at least 1.
      double share = static_cast<double>(workload) *
                     (static_cast<double>(cards[i]) /
                      static_cast<double>(total));
      auto my_work = static_cast<Cardinality>(std::max(share, 1.0));
      prefix->push_back(extensions[i]);
      mapping_[u_next] = extensions[i];
      if (my_work <= threshold_) {
        out_->push_back(WorkUnit{*prefix, my_work});
      } else {
        Split(prefix, my_work);
      }
      mapping_[u_next] = kInvalidVertex;
      prefix->pop_back();
    }
  }

  void SeedRoot(VertexId pivot) {
    mapping_[tree_.root()] = pivot;
  }
  void ClearRoot() { mapping_[tree_.root()] = kInvalidVertex; }

 private:
  const QueryTree& tree_;
  IndexView index_;
  const Cardinality threshold_;
  std::vector<WorkUnit>* out_;
  Enumerator helper_;
  std::vector<VertexId> mapping_;
};

}  // namespace

std::vector<WorkUnit> BuildWorkUnits(const Graph& data, const QueryTree& tree,
                                     IndexView index,
                                     const EnumOptions& enum_options,
                                     std::size_t workers, double beta,
                                     bool decompose, bool sort_by_cardinality,
                                     DecomposeStats* stats) {
  Timer timer;
  DecomposeStats local;
  if (stats == nullptr) stats = &local;
  *stats = DecomposeStats{};

  const std::span<const VertexId> root_cands = index.candidates(tree.root());
  const std::span<const Cardinality> root_cards =
      index.cardinalities(tree.root());
  // Cardinalities drive the split decisions; an unrefined index (empty or
  // mis-sized vector) would silently produce zero work units.
  CECI_DCHECK_EQ(root_cards.size(), root_cands.size())
      << "BuildWorkUnits needs a refined index";
  Cardinality total = 0;
  for (Cardinality c : root_cards) {
    total = SaturatingAdd(total, c);
  }
  std::vector<WorkUnit> units;

  Cardinality threshold = kCardinalityCap;
  if (decompose && workers > 0 && total > 0) {
    const double expected =
        static_cast<double>(total) / static_cast<double>(workers);
    threshold = static_cast<Cardinality>(
        std::max(beta * expected, 1.0));
  }
  stats->threshold = threshold;

  Decomposer decomposer(data, tree, index, enum_options, threshold, &units);
  for (std::size_t i = 0; i < root_cands.size(); ++i) {
    const VertexId pivot = root_cands[i];
    const Cardinality card = root_cards[i];
    if (card == 0) continue;
    if (!decompose || card <= threshold) {
      units.push_back(WorkUnit{{pivot}, card});
    } else {
      ++stats->extreme_clusters;
      decomposer.SeedRoot(pivot);
      std::vector<VertexId> prefix = {pivot};
      decomposer.Split(&prefix, card);
      decomposer.ClearRoot();
    }
  }

  // Larger work first so stragglers are small (§4.3).
  if (sort_by_cardinality) {
    std::stable_sort(units.begin(), units.end(),
                     [](const WorkUnit& a, const WorkUnit& b) {
                       return a.cardinality > b.cardinality;
                     });
  }
  stats->work_units = units.size();
  stats->seconds = timer.Seconds();
  return units;
}

}  // namespace ceci
