// Matching (visit) order selection (paper §2.2).
//
// All orders produced here are topological orders of the BFS query tree
// (parent before child), which CECI construction requires. BFS order is
// the paper's default; the edge-ranked order follows Tran et al. [53]
// (prefer selective vertices with many back-connections), and the
// path-ranked order follows TurboIso [17] (visit cheapest root-to-leaf
// paths first). The paper reports up to 34.5% speedup from the ranked
// orders over naive BFS.
#ifndef CECI_CECI_MATCHING_ORDER_H_
#define CECI_CECI_MATCHING_ORDER_H_

#include <string>
#include <vector>

#include "ceci/query_tree.h"
#include "graph/graph.h"

namespace ceci {

enum class OrderStrategy { kBfs, kEdgeRanked, kPathRanked };

std::string OrderStrategyName(OrderStrategy s);

/// Computes a matching order for `tree` using per-vertex candidate counts
/// as the selectivity estimate. The result is always a valid topological
/// order of the tree.
std::vector<VertexId> ComputeMatchingOrder(
    const Graph& query, const QueryTree& tree,
    const std::vector<std::size_t>& candidate_counts, OrderStrategy strategy);

}  // namespace ceci

#endif  // CECI_CECI_MATCHING_ORDER_H_
