// ExtremeCluster detection and decomposition (paper §4.3, Algorithm 3).
//
// An embedding cluster whose pivot cardinality exceeds β × (total
// cardinality / worker count) would dominate parallel listing time. Such
// clusters are recursively split: the pivot's partial embedding is extended
// one matching-order position at a time, and each extension becomes its own
// work unit carrying a proportional share of the parent's estimated
// workload, until every unit falls under the threshold.
#ifndef CECI_CECI_EXTREME_CLUSTER_H_
#define CECI_CECI_EXTREME_CLUSTER_H_

#include <vector>

#include "ceci/ceci_index.h"
#include "ceci/enumerator.h"
#include "ceci/query_tree.h"

namespace ceci {

/// A unit of enumeration work: a valid partial embedding over the first
/// prefix.size() matching-order positions plus its estimated workload.
struct WorkUnit {
  std::vector<VertexId> prefix;
  Cardinality cardinality = 0;
};

struct DecomposeStats {
  /// Clusters whose cardinality exceeded the threshold.
  std::size_t extreme_clusters = 0;
  /// Final number of work units.
  std::size_t work_units = 0;
  Cardinality threshold = 0;
  double seconds = 0.0;
};

/// Builds the work pool. With decompose=false (ST/CGD) every pivot is one
/// unit; with decompose=true (FGD) extreme clusters are split per
/// Algorithm 3. With sort_by_cardinality=true units are ordered largest
/// first so big work starts early (§4.3) — the dynamic policies use this;
/// the paper's naive static distribution does not. `beta` trades
/// decomposition overhead for balance.
std::vector<WorkUnit> BuildWorkUnits(const Graph& data, const QueryTree& tree,
                                     IndexView index,
                                     const EnumOptions& enum_options,
                                     std::size_t workers, double beta,
                                     bool decompose, bool sort_by_cardinality,
                                     DecomposeStats* stats);

}  // namespace ceci

#endif  // CECI_CECI_EXTREME_CLUSTER_H_
