// CECI creation with BFS-based filtering (paper §3.2, Algorithm 1).
//
// The data graph is explored from the cluster pivots level by level along
// the BFS query tree. For each query vertex, the frontier (its tree
// parent's candidate set) is expanded through four filters: label (LF),
// degree (DF), neighborhood label count (NLCF), and the empty-key cascade
// (a frontier vertex whose expansion yields no candidates can match no
// embedding and is removed from the parent, together with its key entries
// in sibling lists). NTE candidate lists are then built for every non-tree
// edge by expanding the NTE parent's candidates against the child's
// candidate set.
#ifndef CECI_CECI_CECI_BUILDER_H_
#define CECI_CECI_CECI_BUILDER_H_

#include <cstdint>

#include "ceci/ceci_index.h"
#include "ceci/query_tree.h"
#include "graph/graph.h"
#include "graph/nlc_index.h"
#include "util/budget.h"
#include "util/thread_pool.h"

namespace ceci {

struct BuildOptions {
  /// Optional pool for parallel frontier expansion (§3.6: dynamic pull
  /// distribution with thread-private bins merged afterwards). Null runs
  /// serially.
  ThreadPool* pool = nullptr;
  /// Frontiers smaller than this expand serially even with a pool.
  std::size_t parallel_threshold = 2048;
  /// Build NTE candidate lists (the CECI approach). CFLMatch-style
  /// auxiliary structures keep TE candidates only (§4: "existing solutions
  /// only have auxiliary data structure equivalent to TE_Candidates");
  /// the CFL baseline sets this to false.
  bool build_nte_lists = true;
  /// When set, restricts the cluster pivots to this sorted subset of the
  /// root's candidates instead of scanning the whole data graph. The
  /// distributed runtime (§5) builds a per-machine CECI over the pivots
  /// assigned to that machine.
  const std::vector<VertexId>* root_candidates = nullptr;
  /// When set, one record per matching-order vertex (root first) is
  /// appended: the candidate count right after that vertex's TE expansion
  /// and union, and the per-filter rejection deltas that produced it. The
  /// records are deltas of counters Build() maintains anyway, so the hot
  /// loops are untouched (profiler support; see src/ceci/profiler.h).
  std::vector<struct BuildVertexStats>* vertex_stats = nullptr;
  /// Cooperative execution budget (util/budget.h); null = unbounded.
  /// Build() polls the deadline/token between frontier chunks and per
  /// matching-order vertex, and charges each vertex's measured index
  /// footprint (CeciIndex::MemoryFootprint) as soon as it is built. On
  /// exhaustion the loop exits early and the returned index is partial —
  /// callers must check the tracker before refining or enumerating it.
  BudgetTracker* budget = nullptr;
};

/// One matching-order vertex's filtering record (BuildOptions::vertex_stats).
struct BuildVertexStats {
  VertexId u = 0;
  /// |C(u)| immediately after LF/DF/NLCF expansion and value union —
  /// before later vertices' empty-key cascades shrink it. For the root:
  /// the initial pivot scan (its rejection counts stay 0; the scan is not
  /// per-filter instrumented).
  std::size_t candidates_filtered = 0;
  std::uint64_t rejected_label = 0;
  std::uint64_t rejected_degree = 0;
  std::uint64_t rejected_nlc = 0;
};

struct BuildStats {
  /// Candidates rejected by each filter during TE expansion.
  std::uint64_t rejected_label = 0;
  std::uint64_t rejected_degree = 0;
  std::uint64_t rejected_nlc = 0;
  /// Frontier vertices removed by the empty-key cascade.
  std::uint64_t cascade_removals = 0;
  /// NTE parent candidates removed because their NTE expansion was empty.
  std::uint64_t nte_cascade_removals = 0;
  /// Frontier vertices expanded (adjacency-list requests) and adjacency
  /// entries scanned — the IO units charged by distsim's shared-storage
  /// cost model (§5, Fig. 20).
  std::uint64_t frontier_expansions = 0;
  std::uint64_t neighbors_scanned = 0;
  double seconds = 0.0;
};

/// Builds the unrefined CECI for (data, query) under `tree`'s matching
/// order. Candidate sets are exact w.r.t. completeness (Lemma 1): no true
/// candidate is ever removed.
class CeciBuilder {
 public:
  CeciBuilder(const Graph& data, const NlcIndex& data_nlc)
      : data_(data), nlc_(data_nlc) {}

  /// Runs Algorithm 1 plus NTE construction. `stats` may be null.
  CeciIndex Build(const Graph& query, const QueryTree& tree,
                  const BuildOptions& options, BuildStats* stats) const;

 private:
  const Graph& data_;
  const NlcIndex& nlc_;
};

}  // namespace ceci

#endif  // CECI_CECI_CECI_BUILDER_H_
