#include "ceci/ceci_builder.h"

#include <algorithm>

#include <string>

#include "ceci/preprocess.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {
namespace {

// Thread-private expansion bin (§3.6): one contiguous chunk of the frontier
// expands into a private list of (key, values) pairs, merged in chunk order
// afterwards so the result is identical to serial execution.
struct ExpansionBin {
  std::vector<std::pair<VertexId, std::vector<VertexId>>> entries;
  std::vector<VertexId> dead_frontier;
  BuildStats stats;
};

// Frontier vertices expanded between deadline/token polls. Each expansion
// scans a full adjacency list, so one stride bounds the reaction time to
// ~1k adjacency scans per worker.
constexpr std::uint64_t kBuildPollStride = 1024;

}  // namespace

CeciIndex CeciBuilder::Build(const Graph& query, const QueryTree& tree,
                             const BuildOptions& options,
                             BuildStats* stats) const {
  Timer timer;
  BuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = BuildStats{};

  const std::size_t nq = query.num_vertices();
  const std::size_t nd = data_.num_vertices();
  CeciIndex index(nq);

  std::vector<std::vector<NlcIndex::Entry>> profiles(nq);
  for (VertexId u = 0; u < nq; ++u) {
    profiles[u] = NlcIndex::Profile(query, u);
  }
  // Candidate-set membership flags; drive the cascading deletions.
  std::vector<std::vector<char>> alive(nq, std::vector<char>(nd, 0));

  const VertexId root = tree.root();
  if (options.root_candidates != nullptr) {
    index.at(root).candidates = *options.root_candidates;
  } else {
    index.at(root).candidates = CollectCandidates(data_, nlc_, query, root);
  }
  for (VertexId v : index.at(root).candidates) alive[root][v] = 1;

  BudgetTracker* budget = options.budget;
  if (budget != nullptr) {
    const CeciIndex::VertexFootprint f = index.MemoryFootprint(root);
    budget->ChargeBytes(f.te_bytes + f.nte_bytes + f.candidate_bytes);
    if (budget->Poll()) {
      stats->seconds = timer.Seconds();
      return index;  // partial: root candidates only
    }
  }

  if (options.vertex_stats != nullptr) {
    options.vertex_stats->clear();
    BuildVertexStats root_stats;
    root_stats.u = root;
    root_stats.candidates_filtered = index.at(root).candidates.size();
    options.vertex_stats->push_back(root_stats);
  }

  // Expands one frontier vertex of u through LF / DF / NLCF.
  auto expand_te = [&](VertexId u, VertexId v_f, std::vector<VertexId>* vals,
                       BuildStats* s) {
    ++s->frontier_expansions;
    s->neighbors_scanned += data_.degree(v_f);
    for (VertexId v : data_.neighbors(v_f)) {
      if (!data_.HasAllLabels(v, query.labels(u))) {
        ++s->rejected_label;
        continue;
      }
      if (data_.degree(v) < query.degree(u)) {
        ++s->rejected_degree;
        continue;
      }
      if (!nlc_.Covers(v, profiles[u])) {
        ++s->rejected_nlc;
        continue;
      }
      vals->push_back(v);  // neighbors are sorted, so vals is sorted
    }
  };

  // Removes `dead` vertices from the candidate set of `u_owner` and drops
  // their key entries from the TE lists of u_owner's already-built children
  // (Algorithm 1 lines 9-12 / the analogous NTE cascade).
  std::vector<char> processed(nq, 0);
  processed[root] = 1;
  auto cascade_remove = [&](VertexId u_owner,
                            const std::vector<VertexId>& dead) {
    if (dead.empty()) return;
    for (VertexId v : dead) alive[u_owner][v] = 0;
    auto& cands = index.at(u_owner).candidates;
    cands.erase(std::remove_if(cands.begin(), cands.end(),
                               [&](VertexId v) {
                                 return !alive[u_owner][v];
                               }),
                cands.end());
    for (VertexId u_c : tree.children(u_owner)) {
      if (!processed[u_c]) continue;
      index.at(u_c).te.Prune(
          [&](VertexId key) { return alive[u_owner][key] != 0; },
          [](VertexId) { return true; });
    }
    // NTE lists built earlier whose parent is u_owner also key by it.
    for (std::uint32_t e : tree.nte_out(u_owner)) {
      VertexId u_c = tree.non_tree_edges()[e].child;
      if (!processed[u_c] || index.at(u_c).nte.empty()) continue;
      auto ids = tree.nte_in(u_c);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        if (ids[k] == e) {
          index.at(u_c).nte[k].Prune(
              [&](VertexId key) { return alive[u_owner][key] != 0; },
              [](VertexId) { return true; });
        }
      }
    }
  };

  // Matching order, not raw BFS order: it is a topological order of the
  // tree and additionally guarantees every NTE parent is built before its
  // NTE child (the BFS default makes the two coincide, per the paper).
  for (VertexId u : tree.matching_order()) {
    if (u == root) continue;
    // Cooperative budget check: one poll per matching-order vertex plus
    // stride polls inside the frontier loops below. A break leaves the
    // index partial; the matcher reports kDeadline/kMemoryBudget/
    // kCancelled instead of refining or enumerating it.
    if (budget != nullptr && budget->Poll()) break;
    TraceSpan level_span(
        [&] { return "build/u" + std::to_string(u); });
    const VertexId u_p = tree.parent(u);
    CeciVertexData& ud = index.at(u);
    const std::vector<VertexId>& frontier = index.at(u_p).candidates;
    // Filter rejections attributable to this vertex are deltas of the
    // aggregate counters around its TE expansion (the parallel path merges
    // its bins into `stats` before the union loop, so deltas hold there
    // too). Zero cost when vertex_stats is unset.
    const BuildStats before_expand = *stats;

    // --- TE expansion (Algorithm 1) ---
    std::vector<VertexId> dead_frontier;
    const bool parallel = options.pool != nullptr &&
                          frontier.size() >= options.parallel_threshold;
    if (!parallel) {
      std::uint64_t since_poll = 0;
      for (VertexId v_f : frontier) {
        std::vector<VertexId> vals;
        expand_te(u, v_f, &vals, stats);
        if (vals.empty()) {
          dead_frontier.push_back(v_f);
        } else {
          ud.te.Append(v_f, std::move(vals));
        }
        if (budget != nullptr && ++since_poll == kBuildPollStride) {
          since_poll = 0;
          if (budget->Poll()) break;
        }
      }
    } else {
      const std::size_t chunks =
          std::min(frontier.size(), options.pool->num_threads() * 4);
      std::vector<ExpansionBin> bins(chunks);
      const std::size_t per = (frontier.size() + chunks - 1) / chunks;
      options.pool->ParallelFor(chunks, 1, [&](std::size_t c) {
        ExpansionBin& bin = bins[c];
        std::size_t begin = c * per;
        std::size_t end = std::min(begin + per, frontier.size());
        std::uint64_t since_poll = 0;
        for (std::size_t i = begin; i < end; ++i) {
          VertexId v_f = frontier[i];
          std::vector<VertexId> vals;
          expand_te(u, v_f, &vals, &bin.stats);
          if (vals.empty()) {
            bin.dead_frontier.push_back(v_f);
          } else {
            bin.entries.emplace_back(v_f, std::move(vals));
          }
          // Each chunk polls on its own stride; an exhausted budget stops
          // every sibling chunk at its next relaxed-flag read.
          if (budget != nullptr && ++since_poll == kBuildPollStride) {
            since_poll = 0;
            if (budget->Poll()) break;
          }
          if (budget != nullptr && budget->Exhausted()) break;
        }
      });
      for (ExpansionBin& bin : bins) {
        for (auto& [key, vals] : bin.entries) {
          ud.te.Append(key, std::move(vals));
        }
        dead_frontier.insert(dead_frontier.end(), bin.dead_frontier.begin(),
                             bin.dead_frontier.end());
        stats->rejected_label += bin.stats.rejected_label;
        stats->rejected_degree += bin.stats.rejected_degree;
        stats->rejected_nlc += bin.stats.rejected_nlc;
        stats->frontier_expansions += bin.stats.frontier_expansions;
        stats->neighbors_scanned += bin.stats.neighbors_scanned;
      }
    }

    // Candidate set of u = union of TE values.
    for (std::size_t i = 0; i < ud.te.num_keys(); ++i) {
      for (VertexId v : ud.te.values_at(i)) {
        if (!alive[u][v]) {
          alive[u][v] = 1;
          ud.candidates.push_back(v);
        }
      }
    }
    std::sort(ud.candidates.begin(), ud.candidates.end());
    // Candidates were deduped through the alive flags, so sorting makes
    // them strictly ascending — the property every binary search and
    // intersection downstream depends on.
    CECI_DCHECK(std::adjacent_find(ud.candidates.begin(),
                                   ud.candidates.end()) ==
                ud.candidates.end())
        << "duplicate candidate for u" << u;

    if (options.vertex_stats != nullptr) {
      BuildVertexStats vs;
      vs.u = u;
      vs.candidates_filtered = ud.candidates.size();
      vs.rejected_label = stats->rejected_label - before_expand.rejected_label;
      vs.rejected_degree =
          stats->rejected_degree - before_expand.rejected_degree;
      vs.rejected_nlc = stats->rejected_nlc - before_expand.rejected_nlc;
      options.vertex_stats->push_back(vs);
    }

    stats->cascade_removals += dead_frontier.size();
    cascade_remove(u_p, dead_frontier);

    if (budget != nullptr && budget->Exhausted()) break;

    // --- NTE expansion (§3.2, last paragraph) ---
    auto nte_ids = tree.nte_in(u);
    if (!options.build_nte_lists) nte_ids = {};
    ud.nte.resize(nte_ids.size());
    std::uint64_t nte_since_poll = 0;
    for (std::size_t k = 0; k < nte_ids.size(); ++k) {
      const VertexId u_n = tree.non_tree_edges()[nte_ids[k]].parent;
      std::vector<VertexId> dead_nte;
      for (VertexId v_n : index.at(u_n).candidates) {
        std::vector<VertexId> vals;
        ++stats->frontier_expansions;
        stats->neighbors_scanned += data_.degree(v_n);
        for (VertexId v : data_.neighbors(v_n)) {
          if (alive[u][v]) vals.push_back(v);
        }
        if (vals.empty()) {
          dead_nte.push_back(v_n);
        } else {
          ud.nte[k].Append(v_n, std::move(vals));
        }
        if (budget != nullptr && ++nte_since_poll == kBuildPollStride) {
          nte_since_poll = 0;
          if (budget->Poll()) break;
        }
      }
      stats->nte_cascade_removals += dead_nte.size();
      cascade_remove(u_n, dead_nte);
      if (budget != nullptr && budget->Exhausted()) break;
    }

    // Incremental byte accounting: the vertex's lists are final now
    // (later cascades only shrink them), so its measured footprint is an
    // upper bound on what it will occupy.
    if (budget != nullptr) {
      const CeciIndex::VertexFootprint f = index.MemoryFootprint(u);
      if (budget->ChargeBytes(f.te_bytes + f.nte_bytes + f.candidate_bytes)) {
        processed[u] = 1;
        break;
      }
    }

    processed[u] = 1;
  }

  stats->seconds = timer.Seconds();
  return index;
}

}  // namespace ceci
