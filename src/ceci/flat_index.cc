#include "ceci/flat_index.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/bitmap.h"
#include "util/check.h"

namespace ceci {
namespace {

// Element size of each slab, indexed by SlabKind.
constexpr std::size_t kElemBytes[FlatCeciIndex::kNumSlabs] = {
    sizeof(FlatVertexMeta),  // kVertexMeta
    sizeof(VertexId),        // kOrder
    sizeof(VertexId),        // kCandidates
    sizeof(Cardinality),     // kCardinalities
    sizeof(FlatListMeta),    // kListMeta
    sizeof(VertexId),        // kKeys
    sizeof(FlatEntry),       // kEntries
    sizeof(std::uint32_t),   // kArrayPool
    sizeof(std::uint64_t),   // kBitmapPool
};

std::uint64_t AlignUp8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

// The hybrid decision rule: a value set of a vertex with `words`-wide
// bitmaps is stored dense iff the bitmap is strictly smaller than the
// sorted rank array it replaces.
bool UseBitmap(std::uint32_t words, std::size_t count) {
  return count > 0 &&
         static_cast<std::size_t>(words) * sizeof(std::uint64_t) <
             count * sizeof(std::uint32_t);
}

std::uint32_t RankOf(std::span<const VertexId> candidates, VertexId v) {
  auto it = std::lower_bound(candidates.begin(), candidates.end(), v);
  CECI_CHECK(it != candidates.end() && *it == v)
      << "flat freeze: value v" << v
      << " is not an alive candidate of its child vertex (refine first)";
  return static_cast<std::uint32_t>(it - candidates.begin());
}

}  // namespace

FlatCeciIndex FlatCeciIndex::Build(const CeciIndex& index,
                                   const QueryTree& tree) {
  const std::size_t nq = index.num_query_vertices();
  CECI_CHECK(nq == tree.num_vertices());

  // Stage the slab contents in plain vectors, then copy them into one
  // arena. (Transient 2x memory during the freeze; the mutable index being
  // converted is larger than either.)
  std::vector<FlatVertexMeta> vmeta(nq);
  std::vector<VertexId> order(tree.matching_order().begin(),
                              tree.matching_order().end());
  std::vector<VertexId> cands;
  std::vector<Cardinality> cards;
  std::vector<FlatListMeta> lmeta;
  std::vector<VertexId> keys;
  std::vector<FlatEntry> entries;
  std::vector<std::uint32_t> array_pool;
  std::vector<std::uint64_t> bitmap_pool;

  for (VertexId u = 0; u < nq; ++u) {
    const CeciVertexData& ud = index.at(u);
    FlatVertexMeta& m = vmeta[u];
    m.cand_begin = static_cast<std::uint32_t>(cands.size());
    m.cand_count = static_cast<std::uint32_t>(ud.candidates.size());
    m.bitmap_words =
        static_cast<std::uint32_t>(BitmapWords(ud.candidates.size()));
    cands.insert(cands.end(), ud.candidates.begin(), ud.candidates.end());
    if (ud.cardinalities.size() == ud.candidates.size()) {
      cards.insert(cards.end(), ud.cardinalities.begin(),
                   ud.cardinalities.end());
    } else {
      // Unrefined cardinalities: keep the parallel slab shape with zeros.
      cards.resize(cards.size() + ud.candidates.size(), 0);
    }

    const std::span<const VertexId> child_cands(ud.candidates);
    auto append_list = [&](const CandidateList& list) {
      FlatListMeta lm;
      lm.key_begin = static_cast<std::uint32_t>(keys.size());
      lm.key_count = static_cast<std::uint32_t>(list.num_keys());
      lm.entry_begin = static_cast<std::uint32_t>(entries.size());
      lm.owner = u;
      for (std::size_t i = 0; i < list.num_keys(); ++i) {
        keys.push_back(list.keys()[i]);
        const std::span<const VertexId> values = list.values_at(i);
        FlatEntry e;
        if (UseBitmap(m.bitmap_words, values.size())) {
          e.offset = static_cast<std::uint32_t>(bitmap_pool.size());
          e.count_and_tag = static_cast<std::uint32_t>(values.size()) |
                            FlatEntry::kBitmapTag;
          bitmap_pool.resize(bitmap_pool.size() + m.bitmap_words, 0);
          const std::span<std::uint64_t> bits(
              bitmap_pool.data() + e.offset, m.bitmap_words);
          for (VertexId v : values) {
            const std::uint32_t r = RankOf(child_cands, v);
            bits[r >> 6] |= std::uint64_t{1} << (r & 63);
          }
        } else {
          e.offset = static_cast<std::uint32_t>(array_pool.size());
          e.count_and_tag = static_cast<std::uint32_t>(values.size());
          for (VertexId v : values) {
            array_pool.push_back(RankOf(child_cands, v));
          }
        }
        entries.push_back(e);
      }
      const auto list_index = static_cast<std::uint32_t>(lmeta.size());
      lmeta.push_back(lm);
      return list_index;
    };

    m.te_list = u == tree.root() ? kNoFlatList : append_list(ud.te);
    m.nte_begin = static_cast<std::uint32_t>(lmeta.size());
    m.nte_count = static_cast<std::uint32_t>(ud.nte.size());
    for (const CandidateList& list : ud.nte) append_list(list);
  }

  // Lay the slabs out back to back, each 8-aligned.
  FlatCeciIndex flat;
  const std::size_t counts[kNumSlabs] = {
      vmeta.size(),   order.size(),   cands.size(),
      cards.size(),   lmeta.size(),   keys.size(),
      entries.size(), array_pool.size(), bitmap_pool.size(),
  };
  std::uint64_t offset = 0;
  for (std::size_t s = 0; s < kNumSlabs; ++s) {
    flat.slabs_[s].offset = offset;
    flat.slabs_[s].bytes = counts[s] * kElemBytes[s];
    offset = AlignUp8(offset + flat.slabs_[s].bytes);
  }
  flat.arena_bytes_ = offset;
  flat.owned_.assign((offset + 7) / 8, 0);
  auto* base = reinterpret_cast<std::byte*>(flat.owned_.data());
  flat.arena_ = base;

  auto copy_slab = [&](SlabKind kind, const void* src) {
    if (flat.slabs_[kind].bytes > 0) {
      std::memcpy(base + flat.slabs_[kind].offset, src,
                  flat.slabs_[kind].bytes);
    }
  };
  copy_slab(kVertexMeta, vmeta.data());
  copy_slab(kOrder, order.data());
  copy_slab(kCandidates, cands.data());
  copy_slab(kCardinalities, cards.data());
  copy_slab(kListMeta, lmeta.data());
  copy_slab(kKeys, keys.data());
  copy_slab(kEntries, entries.data());
  copy_slab(kArrayPool, array_pool.data());
  copy_slab(kBitmapPool, bitmap_pool.data());

  flat.BindSpans();
  return flat;
}

void FlatCeciIndex::BindSpans() {
  auto slab_ptr = [&](SlabKind kind) -> const std::byte* {
    return arena_ + slabs_[kind].offset;
  };
  auto slab_count = [&](SlabKind kind) {
    return static_cast<std::size_t>(slabs_[kind].bytes / kElemBytes[kind]);
  };
  vertices_ = {reinterpret_cast<const FlatVertexMeta*>(slab_ptr(kVertexMeta)),
               slab_count(kVertexMeta)};
  order_ = {reinterpret_cast<const VertexId*>(slab_ptr(kOrder)),
            slab_count(kOrder)};
  candidates_ = {reinterpret_cast<const VertexId*>(slab_ptr(kCandidates)),
                 slab_count(kCandidates)};
  cardinalities_ = {
      reinterpret_cast<const Cardinality*>(slab_ptr(kCardinalities)),
      slab_count(kCardinalities)};
  lists_ = {reinterpret_cast<const FlatListMeta*>(slab_ptr(kListMeta)),
            slab_count(kListMeta)};
  keys_ = {reinterpret_cast<const VertexId*>(slab_ptr(kKeys)),
           slab_count(kKeys)};
  entries_ = {reinterpret_cast<const FlatEntry*>(slab_ptr(kEntries)),
              slab_count(kEntries)};
  array_pool_ = {reinterpret_cast<const std::uint32_t*>(slab_ptr(kArrayPool)),
                 slab_count(kArrayPool)};
  bitmap_pool_ = {
      reinterpret_cast<const std::uint64_t*>(slab_ptr(kBitmapPool)),
      slab_count(kBitmapPool)};
}

Result<FlatCeciIndex> FlatCeciIndex::FromArena(
    std::vector<std::uint64_t> owned, MappedFile mapped,
    std::size_t arena_offset, std::size_t arena_bytes,
    std::span<const Slab> slabs, std::size_t num_query_vertices) {
  if (slabs.size() != kNumSlabs) {
    return Status::Corruption("slab table has wrong entry count");
  }
  FlatCeciIndex flat;
  flat.owned_ = std::move(owned);
  flat.mapped_ = std::move(mapped);
  flat.arena_bytes_ = arena_bytes;
  if (flat.mapped_.valid() && flat.mapped_.size() > 0) {
    if (arena_offset % 8 != 0 ||
        arena_offset + arena_bytes > flat.mapped_.size()) {
      return Status::Corruption("arena range exceeds mapped file");
    }
    flat.arena_ = flat.mapped_.data() + arena_offset;
  } else {
    if (arena_offset != 0 || flat.owned_.size() * 8 < arena_bytes) {
      return Status::Corruption("arena range exceeds owned buffer");
    }
    flat.arena_ = reinterpret_cast<const std::byte*>(flat.owned_.data());
  }

  // Slab-table sanity precedes span binding: slabs in canonical order,
  // 8-aligned, whole elements, monotone, inside the arena (the auditor's
  // kFlatSlabOrder class re-checks the same facts on demand).
  std::uint64_t cursor = 0;
  for (std::size_t s = 0; s < kNumSlabs; ++s) {
    const Slab& slab = slabs[s];
    if (slab.offset % 8 != 0 || slab.offset < cursor ||
        slab.bytes % kElemBytes[s] != 0 ||
        slab.offset + slab.bytes > arena_bytes) {
      return Status::Corruption("slab " + std::to_string(s) +
                                " out of order or out of bounds");
    }
    cursor = slab.offset + slab.bytes;
    flat.slabs_[s] = slab;
  }
  flat.BindSpans();
  if (flat.vertices_.size() != num_query_vertices) {
    return Status::Corruption("vertex-meta slab disagrees with header");
  }
  Status valid = flat.ValidateStructure();
  if (!valid.ok()) return valid;
  return flat;
}

Status FlatCeciIndex::ValidateStructure() const {
  const std::size_t nq = vertices_.size();
  // Matching order: one entry per query vertex, a permutation.
  if (order_.size() != nq) {
    return Status::Corruption("matching-order slab has wrong size");
  }
  std::vector<bool> seen(nq, false);
  for (VertexId u : order_) {
    if (u >= nq || seen[u]) {
      return Status::Corruption("matching order is not a permutation");
    }
    seen[u] = true;
  }
  if (cardinalities_.size() != candidates_.size()) {
    return Status::Corruption("cardinality slab not parallel to candidates");
  }

  // Vertex records: contiguous candidate ranges covering the slab, sorted
  // candidate sets, consistent bitmap width, contiguous list ranges.
  std::uint64_t cand_cursor = 0;
  std::uint64_t list_cursor = 0;
  const VertexId root = order_.empty() ? 0 : order_[0];
  for (VertexId u = 0; u < nq; ++u) {
    const FlatVertexMeta& m = vertices_[u];
    if (m.cand_begin != cand_cursor ||
        std::uint64_t{m.cand_begin} + m.cand_count > candidates_.size()) {
      return Status::Corruption("candidate range of u" + std::to_string(u) +
                                " not contiguous or out of bounds");
    }
    cand_cursor += m.cand_count;
    if (m.bitmap_words != BitmapWords(m.cand_count)) {
      return Status::Corruption("bitmap width of u" + std::to_string(u) +
                                " inconsistent with candidate count");
    }
    const auto cand = candidates(u);
    for (std::size_t i = 1; i < cand.size(); ++i) {
      if (cand[i - 1] >= cand[i]) {
        return Status::Corruption("candidates of u" + std::to_string(u) +
                                  " not strictly ascending");
      }
    }
    if (u == root) {
      if (m.te_list != kNoFlatList) {
        return Status::Corruption("root carries a TE list");
      }
    } else {
      if (m.te_list != list_cursor) {
        return Status::Corruption("TE list of u" + std::to_string(u) +
                                  " not contiguous");
      }
      ++list_cursor;
    }
    if (m.nte_begin != list_cursor ||
        std::uint64_t{m.nte_begin} + m.nte_count > lists_.size()) {
      return Status::Corruption("NTE list range of u" + std::to_string(u) +
                                " not contiguous or out of bounds");
    }
    list_cursor += m.nte_count;
    // Every list this vertex references must name it as owner.
    const std::uint32_t first =
        m.te_list == kNoFlatList ? m.nte_begin : m.te_list;
    for (std::uint32_t l = first; l < m.nte_begin + m.nte_count; ++l) {
      if (lists_[l].owner != u) {
        return Status::Corruption("list " + std::to_string(l) +
                                  " owner mismatch");
      }
    }
  }
  if (cand_cursor != candidates_.size()) {
    return Status::Corruption("candidate slab has unattributed elements");
  }
  if (list_cursor != lists_.size()) {
    return Status::Corruption("list-meta slab has unattributed lists");
  }

  // Lists: contiguous key/entry ranges, strictly ascending keys.
  std::uint64_t key_cursor = 0;
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    const FlatListMeta& lm = lists_[l];
    if (lm.key_begin != key_cursor || lm.entry_begin != key_cursor ||
        std::uint64_t{lm.key_begin} + lm.key_count > keys_.size()) {
      return Status::Corruption("key range of list " + std::to_string(l) +
                                " not contiguous or out of bounds");
    }
    key_cursor += lm.key_count;
    for (std::uint32_t i = 1; i < lm.key_count; ++i) {
      if (keys_[lm.key_begin + i - 1] >= keys_[lm.key_begin + i]) {
        return Status::Corruption("keys of list " + std::to_string(l) +
                                  " not strictly ascending");
      }
    }
  }
  if (key_cursor != keys_.size() || entries_.size() != keys_.size()) {
    return Status::Corruption("key/entry slabs not parallel");
  }

  // Entries: offsets inside their pool, ranks strictly ascending and below
  // the owner's candidate count, bitmap popcount equal to the stored count.
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    const FlatListMeta& lm = lists_[l];
    const FlatVertexMeta& owner = vertices_[lm.owner];
    for (std::uint32_t i = 0; i < lm.key_count; ++i) {
      const FlatEntry& e = entries_[lm.entry_begin + i];
      const std::string where =
          "entry " + std::to_string(i) + " of list " + std::to_string(l);
      if (e.count() > owner.cand_count) {
        return Status::Corruption(where + " stores more values than the "
                                          "owner has candidates");
      }
      if (e.is_bitmap()) {
        if (std::uint64_t{e.offset} + owner.bitmap_words >
            bitmap_pool_.size()) {
          return Status::Corruption(where + " bitmap out of pool bounds");
        }
        const std::span<const std::uint64_t> bits =
            bitmap_pool_.subspan(e.offset, owner.bitmap_words);
        if (BitmapPopcount(bits) != e.count()) {
          return Status::Corruption(where + " bitmap popcount != count");
        }
        if (owner.bitmap_words > 0 && (owner.cand_count & 63) != 0 &&
            (bits[owner.bitmap_words - 1] >>
             (owner.cand_count & 63)) != 0) {
          return Status::Corruption(where + " bitmap sets ranks past the "
                                            "owner's candidate count");
        }
      } else {
        if (std::uint64_t{e.offset} + e.count() > array_pool_.size()) {
          return Status::Corruption(where + " array out of pool bounds");
        }
        const std::span<const std::uint32_t> ranks =
            array_pool_.subspan(e.offset, e.count());
        for (std::size_t r = 0; r < ranks.size(); ++r) {
          if (ranks[r] >= owner.cand_count ||
              (r > 0 && ranks[r - 1] >= ranks[r])) {
            return Status::Corruption(where + " ranks unsorted or out of "
                                              "range");
          }
        }
      }
    }
  }
  return Status::Ok();
}

FlatCeciIndex FlatCeciIndex::Clone() const {
  FlatCeciIndex copy;
  copy.arena_bytes_ = arena_bytes_;
  copy.owned_.assign((arena_bytes_ + 7) / 8, 0);
  auto* base = reinterpret_cast<std::byte*>(copy.owned_.data());
  if (arena_bytes_ > 0) std::memcpy(base, arena_, arena_bytes_);
  copy.arena_ = base;
  for (std::size_t s = 0; s < kNumSlabs; ++s) copy.slabs_[s] = slabs_[s];
  copy.BindSpans();
  return copy;
}

FlatCeciIndex::EntryRef FlatCeciIndex::MakeRef(const FlatEntry& entry,
                                               VertexId owner) const {
  EntryRef ref;
  ref.count = entry.count();
  if (entry.is_bitmap()) {
    ref.bits = bitmap_pool_.subspan(entry.offset,
                                    vertices_[owner].bitmap_words);
  } else {
    ref.ranks = array_pool_.subspan(entry.offset, ref.count);
  }
  return ref;
}

FlatCeciIndex::EntryRef FlatCeciIndex::ListFind(std::uint32_t list_index,
                                                VertexId key) const {
  const FlatListMeta& lm = lists_[list_index];
  const std::span<const VertexId> keys =
      keys_.subspan(lm.key_begin, lm.key_count);
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return EntryRef{};
  const auto i = static_cast<std::uint32_t>(it - keys.begin());
  return MakeRef(entries_[lm.entry_begin + i], lm.owner);
}

FlatCeciIndex::EntryRef FlatCeciIndex::Te(VertexId u,
                                          VertexId parent_match) const {
  const FlatVertexMeta& m = vertices_[u];
  if (m.te_list == kNoFlatList) return EntryRef{};
  return ListFind(m.te_list, parent_match);
}

FlatCeciIndex::EntryRef FlatCeciIndex::Nte(VertexId u, std::size_t k,
                                           VertexId parent_match) const {
  const FlatVertexMeta& m = vertices_[u];
  CECI_DCHECK(k < m.nte_count);
  return ListFind(m.nte_begin + static_cast<std::uint32_t>(k), parent_match);
}

Cardinality FlatCeciIndex::CardinalityOf(VertexId u, VertexId v) const {
  const auto cand = candidates(u);
  auto it = std::lower_bound(cand.begin(), cand.end(), v);
  if (it == cand.end() || *it != v) return 0;
  return cardinalities(u)[static_cast<std::size_t>(it - cand.begin())];
}

std::size_t FlatCeciIndex::TotalCandidateEdges() const {
  std::size_t total = 0;
  for (const FlatEntry& e : entries_) total += e.count();
  return total;
}

std::size_t FlatCeciIndex::ArrayEntries() const {
  std::size_t n = 0;
  for (const FlatEntry& e : entries_) n += e.is_bitmap() ? 0 : 1;
  return n;
}

std::size_t FlatCeciIndex::BitmapEntries() const {
  std::size_t n = 0;
  for (const FlatEntry& e : entries_) n += e.is_bitmap() ? 1 : 0;
  return n;
}

CeciIndex::VertexFootprint FlatCeciIndex::MemoryFootprint(VertexId u) const {
  const FlatVertexMeta& m = vertices_[u];
  CeciIndex::VertexFootprint f;
  f.candidate_bytes =
      static_cast<std::size_t>(m.cand_count) *
          (sizeof(VertexId) + sizeof(Cardinality)) +
      sizeof(FlatVertexMeta) + sizeof(VertexId);  // meta + order entry

  auto list_bytes = [&](std::uint32_t l, std::size_t* key_count,
                        std::size_t* edge_count) {
    const FlatListMeta& lm = lists_[l];
    std::size_t bytes = sizeof(FlatListMeta) +
                        static_cast<std::size_t>(lm.key_count) *
                            (sizeof(VertexId) + sizeof(FlatEntry));
    for (std::uint32_t i = 0; i < lm.key_count; ++i) {
      const FlatEntry& e = entries_[lm.entry_begin + i];
      bytes += e.is_bitmap()
                   ? static_cast<std::size_t>(m.bitmap_words) *
                         sizeof(std::uint64_t)
                   : static_cast<std::size_t>(e.count()) *
                         sizeof(std::uint32_t);
      *edge_count += e.count();
    }
    *key_count += lm.key_count;
    return bytes;
  };

  if (m.te_list != kNoFlatList) {
    f.te_bytes = list_bytes(m.te_list, &f.te_keys, &f.te_edges);
  }
  f.nte_lists = m.nte_count;
  for (std::uint32_t k = 0; k < m.nte_count; ++k) {
    std::size_t keys = 0;
    f.nte_bytes += list_bytes(m.nte_begin + k, &keys, &f.nte_edges);
  }
  return f;
}

VertexId FlatCeciIndex::MaxCandidateId() const {
  VertexId max = 0;
  for (VertexId v : candidates_) max = std::max(max, v);
  return max;
}

}  // namespace ceci
