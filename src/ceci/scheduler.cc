#include "ceci/scheduler.h"

#include <atomic>
#include <limits>
#include <thread>

#include <string>

#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {

std::string DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kStatic:
      return "ST";
    case Distribution::kCoarseDynamic:
      return "CGD";
    case Distribution::kFineDynamic:
      return "FGD";
  }
  return "?";
}

ScheduleResult RunParallelEnumeration(const Graph& data, const QueryTree& tree,
                                      IndexView index,
                                      const ScheduleOptions& options,
                                      const EmbeddingVisitor* visitor) {
  CECI_CHECK(options.threads >= 1);
  Timer wall;
  ScheduleResult result;

  const bool fine = options.distribution == Distribution::kFineDynamic;
  // The naive static distribution (§4.2) deals clusters out in pivot order
  // with no workload awareness; the dynamic policies process the pool
  // largest-cardinality-first (§4.3).
  const bool sorted = options.distribution != Distribution::kStatic;
  std::vector<WorkUnit> units = [&] {
    TraceSpan span("enumerate/decompose");
    return BuildWorkUnits(data, tree, index, options.enumeration,
                          options.threads, options.beta, fine, sorted,
                          &result.decomposition);
  }();

  // Every work unit must carry a non-empty prefix rooted at a pivot; an
  // empty prefix would make EnumerateFromPrefix re-enumerate everything.
  for (const WorkUnit& unit : units) {
    CECI_DCHECK(!unit.prefix.empty());
    CECI_DCHECK_LE(unit.prefix.size(), tree.num_vertices());
  }

  const std::size_t workers = std::min(options.threads,
                                       std::max<std::size_t>(units.size(), 1));
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<bool> aborted{false};  // a visitor returned false
  const std::uint64_t limit = options.limit == 0
                                  ? std::numeric_limits<std::uint64_t>::max()
                                  : options.limit;

  // The decomposed unit pool is enumeration state too: a hub-heavy FGD
  // decomposition can dwarf the index, so charge it before spawning
  // workers and bail out with an honest zero if that already trips.
  if (options.budget != nullptr) {
    std::size_t unit_bytes = units.capacity() * sizeof(WorkUnit);
    for (const WorkUnit& unit : units) {
      unit_bytes += unit.prefix.capacity() * sizeof(VertexId);
    }
    options.budget->ChargeBytes(unit_bytes);
    options.budget->Poll();
    if (options.budget->Exhausted()) {
      result.seconds = wall.Seconds();
      return result;
    }
  }

  std::vector<EnumStats> worker_stats(workers);
  result.worker_seconds.assign(workers, 0.0);
  result.worker_units.assign(workers, 0);
  std::atomic<std::size_t> next_unit{0};

  if (options.collect_profile) {
    // Cluster skew over pivot cardinalities (before decomposition), unit
    // skew over the work units actually scheduled (after). Read-only walks
    // over structures already built — nothing here touches the hot path.
    result.cluster_skew =
        SkewSummary::Of(index.cardinalities(tree.root()));
    std::vector<Cardinality> unit_cards;
    unit_cards.reserve(units.size());
    for (const WorkUnit& unit : units) unit_cards.push_back(unit.cardinality);
    result.unit_skew = SkewSummary::Of(unit_cards);
  }

  auto worker_fn = [&](std::size_t wid) {
    // The lane outlives the span: spans close while the lane is pinned, so
    // worker timelines group by logical worker id in Chrome-trace export
    // (lane 0 is the main thread; workers start at 1).
    TraceLane lane(static_cast<std::uint32_t>(wid) + 1);
    TraceSpan worker_span(
        [&] { return "enumerate/worker" + std::to_string(wid); });
    const double cpu_start = ThreadCpuSeconds();
    Enumerator enumerator(data, tree, index, options.enumeration);
    enumerator.SetSharedLimit(&emitted, limit);
    enumerator.SetAbortFlag(&aborted);
    if (options.budget != nullptr) {
      enumerator.SetBudget(options.budget);
      options.budget->ChargeBytes(enumerator.StateBytes());
    }
    auto should_stop = [&] {
      return aborted.load(std::memory_order_relaxed) ||
             emitted.load(std::memory_order_relaxed) >= limit ||
             (options.budget != nullptr && options.budget->Exhausted());
    };
    if (options.distribution == Distribution::kStatic) {
      // Round-robin static assignment; no re-adjustment (§4.2).
      for (std::size_t i = wid; i < units.size(); i += workers) {
        ++result.worker_units[wid];
        enumerator.EnumerateFromPrefix(units[i].prefix, visitor);
        if (should_stop()) break;
      }
    } else {
      // Pull-based dynamic distribution (CGD/FGD).
      for (;;) {
        const std::size_t i =
            next_unit.fetch_add(1, std::memory_order_relaxed);
        if (i >= units.size()) break;
        ++result.worker_units[wid];
        enumerator.EnumerateFromPrefix(units[i].prefix, visitor);
        if (should_stop()) break;
      }
    }
    worker_stats[wid] = enumerator.stats();
    result.worker_seconds[wid] = ThreadCpuSeconds() - cpu_start;
  };

  if (workers == 1) {
    worker_fn(0);
  } else if (options.pool != nullptr) {
    // Serving mode: workers 1..N-1 go to the shared pool as one batch;
    // the caller runs worker 0 and then helps drain its own batch, so a
    // pool saturated by other queries cannot stall this one.
    TaskGroup group(options.pool);
    for (std::size_t w = 1; w < workers; ++w) {
      group.Run([&worker_fn, w] { worker_fn(w); });
    }
    worker_fn(0);
    group.Wait();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back(worker_fn, w);
    }
    for (auto& t : threads) t.join();
  }

  result.worker_embeddings.reserve(workers);
  for (const EnumStats& s : worker_stats) {
    result.stats += s;
    result.worker_embeddings.push_back(s.embeddings);
  }
  result.embeddings = result.stats.embeddings;
  result.visitor_abort = aborted.load(std::memory_order_relaxed);
  result.limit_hit = options.limit > 0 &&
                     emitted.load(std::memory_order_relaxed) >= options.limit;
  result.seconds = wall.Seconds();
  return result;
}

}  // namespace ceci
