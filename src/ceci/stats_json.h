// JSON export of per-query match statistics.
//
// The emitted document is the machine-readable twin of `--stats` output:
// every phase timing, filter counter, index size, and worker breakdown in
// MatchStats, optionally joined with the process-wide metrics registry
// snapshot and the recorded trace-span tree. Schema documented field by
// field in docs/observability.md; schema_version bumps on any breaking
// change.
#ifndef CECI_CECI_STATS_JSON_H_
#define CECI_CECI_STATS_JSON_H_

#include <string>

#include "ceci/stats.h"

namespace ceci {

class JsonWriter;

inline constexpr int kMetricsSchemaVersion = 1;

/// Appends the MatchStats breakdown as a JSON object value (the caller
/// positions the writer, e.g. after a Key()).
void AppendMatchStatsJson(const MatchStats& stats, JsonWriter* writer);

struct MetricsReportOptions {
  /// Join the process-wide MetricsRegistry snapshot under "registry".
  bool include_registry = true;
  /// Join Tracer::Global()'s recorded spans under "trace" (only emitted
  /// when the tracer holds events).
  bool include_trace = true;
};

/// Full metrics report for one query: embedding count, MatchStats
/// breakdown, registry snapshot, trace spans. This is the document written
/// by `ceci_query --metrics-json` and the bench sidecars.
std::string MetricsReportJson(const MatchResult& result,
                              const MetricsReportOptions& options = {});

}  // namespace ceci

#endif  // CECI_CECI_STATS_JSON_H_
