// Automorphism breaking (paper §2.2).
//
// Symmetric query vertices make every embedding appear once per query
// automorphism. The paper combines TurboIso's NEC equivalence groups with
// the ordering-based symmetry breaking of Grochow & Kellis [16]. We
// implement the full Grochow–Kellis scheme: enumerate Aut(G_q) (queries are
// small), then repeatedly pick the least vertex with a non-trivial orbit,
// emit M[v] < M[w] for every other orbit member w, and descend into the
// stabilizer. The resulting conditions break *all* automorphisms, so each
// embedding is listed exactly once.
#ifndef CECI_CECI_SYMMETRY_H_
#define CECI_CECI_SYMMETRY_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace ceci {

/// Ordering constraints that kill automorphisms.
class SymmetryConstraints {
 public:
  /// M[smaller] < M[larger] must hold in every reported embedding.
  struct Constraint {
    VertexId smaller;
    VertexId larger;
  };

  /// Computes the automorphism group of `query` and derives ordering
  /// constraints. If automorphism enumeration exceeds an internal search
  /// budget (pathologically symmetric large queries), returns an empty set
  /// — callers then enumerate automorphic duplicates, which is safe but
  /// redundant.
  static SymmetryConstraints Compute(const Graph& query);

  /// An empty constraint set (automorphism breaking disabled).
  static SymmetryConstraints None(std::size_t num_query_vertices);

  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Query vertices w whose match must be less than u's match.
  std::span<const VertexId> must_be_less(VertexId u) const {
    return lower_than_[u];
  }
  /// Query vertices w whose match must be greater than u's match.
  std::span<const VertexId> must_be_greater(VertexId u) const {
    return higher_than_[u];
  }

  /// |Aut(G_q)| as found by the enumerator (1 when asymmetric; 0 when the
  /// search budget was exhausted and breaking is disabled).
  std::size_t automorphism_count() const { return automorphism_count_; }

  bool empty() const { return constraints_.empty(); }

 private:
  void IndexConstraints(std::size_t n);

  std::vector<Constraint> constraints_;
  std::vector<std::vector<VertexId>> lower_than_;
  std::vector<std::vector<VertexId>> higher_than_;
  std::size_t automorphism_count_ = 1;
};

}  // namespace ceci

#endif  // CECI_CECI_SYMMETRY_H_
