// TE/NTE candidate list: the key-value structure of paper §3.1/§3.6.
//
// Each list maps a candidate v_p of the parent (tree parent for TE lists,
// NTE parent for NTE lists) to the sorted set of candidates of the child
// query vertex adjacent to v_p. Keys are kept sorted so lookups are binary
// searches, mirroring the paper's sorted STL-vector-of-pairs layout.
#ifndef CECI_CECI_CANDIDATE_LIST_H_
#define CECI_CECI_CANDIDATE_LIST_H_

#include <functional>
#include <span>
#include <vector>

#include "graph/types.h"

namespace ceci {

/// Sorted key → sorted value-set candidate map.
///
/// Two storage modes: the *mutable* mode keeps one vector per key (cheap
/// appends and pruning during construction/refinement); Freeze() converts
/// to a CSR-flat layout — keys, offsets, one contiguous value array — that
/// the enumeration hot path reads with one fewer indirection and much
/// better locality. Freeze is idempotent; mutating a frozen list is a
/// programming error (checked).
class CandidateList {
 public:
  CandidateList() = default;

  /// Appends a key with its value set. Keys must arrive in strictly
  /// ascending order (the builder expands sorted frontiers, so this holds
  /// naturally); values must be sorted.
  void Append(VertexId key, std::vector<VertexId> values);

  /// Value set for `key`; empty span if the key is absent.
  std::span<const VertexId> Find(VertexId key) const;

  /// Converts to the immutable CSR-flat layout. Call after refinement.
  void Freeze();
  bool frozen() const { return frozen_; }

  std::size_t num_keys() const { return keys_.size(); }
  std::span<const VertexId> keys() const { return keys_; }
  std::span<const VertexId> values_at(std::size_t idx) const {
    if (frozen_) {
      return {flat_values_.data() + flat_offsets_[idx],
              flat_values_.data() + flat_offsets_[idx + 1]};
    }
    return values_[idx];
  }

  /// Total number of candidate edges stored.
  std::size_t TotalValues() const;

  /// Sorted union of all value sets (the candidate set contribution).
  std::vector<VertexId> UnionOfValues() const;

  /// Drops keys failing `keep_key` and values failing `keep_value`; keys
  /// left with no values are dropped too. Returns the number of candidate
  /// edges removed.
  std::size_t Prune(const std::function<bool(VertexId)>& keep_key,
                    const std::function<bool(VertexId)>& keep_value);

  /// Approximate heap bytes (8 bytes per stored edge plus key overhead,
  /// matching the paper's Table 2 accounting of 8 bytes per edge).
  std::size_t MemoryBytes() const;

  /// Actual heap bytes held by this list's allocations, including vector
  /// capacity slack and allocator block rounding (malloc_usable_size where
  /// available, capacity-based otherwise). Always >= MemoryBytes(); this is
  /// the honest figure to compare against FlatCeciIndex::ArenaBytes().
  std::size_t MeasuredHeapBytes() const;

  bool empty() const { return keys_.empty(); }
  void clear();

 private:
  // Test-only backdoor for planting list corruption (invariant-auditor
  // negative tests); never referenced by library code.
  friend class CandidateListTestPeer;

  std::vector<VertexId> keys_;
  std::vector<std::vector<VertexId>> values_;   // mutable mode
  bool frozen_ = false;
  std::vector<std::uint32_t> flat_offsets_;     // frozen mode, size keys+1
  std::vector<VertexId> flat_values_;
};

}  // namespace ceci

#endif  // CECI_CECI_CANDIDATE_LIST_H_
