// Preprocessing (paper §2.2): per-query-vertex candidate counting with the
// label/degree/NLC filters, root selection by argmin |candidate(u)|/degree(u),
// BFS query-tree construction, and matching-order selection.
#ifndef CECI_CECI_PREPROCESS_H_
#define CECI_CECI_PREPROCESS_H_

#include <vector>

#include "ceci/matching_order.h"
#include "ceci/query_tree.h"
#include "graph/graph.h"
#include "graph/nlc_index.h"
#include "util/status.h"

namespace ceci {

struct PreprocessOptions {
  OrderStrategy order = OrderStrategy::kBfs;
};

/// Output of preprocessing: the chosen root, the query tree with its
/// matching order applied, and the per-vertex candidate counts that drove
/// the choices.
struct Preprocessed {
  VertexId root = kInvalidVertex;
  QueryTree tree;
  /// |candidate(u)| after label, degree, and NLC filtering.
  std::vector<std::size_t> candidate_counts;
  /// True iff some query vertex has zero candidates (no embeddings exist).
  bool infeasible = false;
};

/// Counts candidates of one query vertex under the LDF+NLC filters.
std::size_t CountCandidates(const Graph& data, const NlcIndex& data_nlc,
                            const Graph& query, VertexId u);

/// Materializes the candidate list of one query vertex (used for root
/// pivots and by index-free baselines).
std::vector<VertexId> CollectCandidates(const Graph& data,
                                        const NlcIndex& data_nlc,
                                        const Graph& query, VertexId u);

/// Runs the full preprocessing pipeline. Fails only on malformed input
/// (empty or disconnected query).
Result<Preprocessed> Preprocess(const Graph& data, const NlcIndex& data_nlc,
                                const Graph& query,
                                const PreprocessOptions& options);

}  // namespace ceci

#endif  // CECI_CECI_PREPROCESS_H_
