#include "ceci/stats_json.h"

#include "ceci/profiler.h"
#include "util/json_writer.h"
#include "util/metrics_registry.h"
#include "util/trace.h"

namespace ceci {

void AppendMatchStatsJson(const MatchStats& stats, JsonWriter* w) {
  w->BeginObject();

  w->Key("phases");
  w->BeginObject();
  w->KV("preprocess_seconds", stats.preprocess_seconds);
  w->KV("build_seconds", stats.build_seconds);
  w->KV("refine_seconds", stats.refine_seconds);
  w->KV("enumerate_seconds", stats.enumerate_seconds);
  w->KV("total_seconds", stats.total_seconds);
  w->EndObject();

  w->Key("index");
  w->BeginObject();
  w->KV("ceci_bytes", static_cast<std::uint64_t>(stats.ceci_bytes));
  w->KV("ceci_bytes_unrefined",
        static_cast<std::uint64_t>(stats.ceci_bytes_unrefined));
  w->KV("theoretical_bytes",
        static_cast<std::uint64_t>(stats.theoretical_bytes));
  w->KV("candidate_edges", static_cast<std::uint64_t>(stats.candidate_edges));
  w->KV("candidate_edges_unrefined",
        static_cast<std::uint64_t>(stats.candidate_edges_unrefined));
  w->KV("flat_bytes", static_cast<std::uint64_t>(stats.flat_bytes));
  w->KV("flat_array_entries",
        static_cast<std::uint64_t>(stats.flat_array_entries));
  w->KV("flat_bitmap_entries",
        static_cast<std::uint64_t>(stats.flat_bitmap_entries));
  w->EndObject();

  w->Key("clusters");
  w->BeginObject();
  w->KV("embedding_clusters",
        static_cast<std::uint64_t>(stats.embedding_clusters));
  w->KV("total_cardinality",
        static_cast<std::uint64_t>(stats.total_cardinality));
  w->KV("extreme_clusters",
        static_cast<std::uint64_t>(stats.decomposition.extreme_clusters));
  w->KV("work_units", static_cast<std::uint64_t>(stats.decomposition.work_units));
  w->KV("threshold", static_cast<std::uint64_t>(stats.decomposition.threshold));
  w->KV("decompose_seconds", stats.decomposition.seconds);
  w->EndObject();

  w->Key("build");
  w->BeginObject();
  w->KV("rejected_label", stats.build.rejected_label);
  w->KV("rejected_degree", stats.build.rejected_degree);
  w->KV("rejected_nlc", stats.build.rejected_nlc);
  w->KV("cascade_removals", stats.build.cascade_removals);
  w->KV("nte_cascade_removals", stats.build.nte_cascade_removals);
  w->KV("frontier_expansions", stats.build.frontier_expansions);
  w->KV("neighbors_scanned", stats.build.neighbors_scanned);
  w->EndObject();

  w->Key("refine");
  w->BeginObject();
  w->KV("pruned_candidates", stats.refine.pruned_candidates);
  w->KV("pruned_edges", stats.refine.pruned_edges);
  w->EndObject();

  w->Key("enumeration");
  w->BeginObject();
  w->KV("recursive_calls", stats.enumeration.recursive_calls);
  w->KV("intersections", stats.enumeration.intersections);
  w->KV("intersection_elements_in",
        stats.enumeration.intersection_elements_in);
  w->KV("intersection_elements_out",
        stats.enumeration.intersection_elements_out);
  w->KV("edge_verifications", stats.enumeration.edge_verifications);
  w->KV("embeddings", stats.enumeration.embeddings);
  w->EndObject();

  w->Key("symmetry");
  w->BeginObject();
  w->KV("automorphisms_broken",
        static_cast<std::uint64_t>(stats.automorphisms_broken));
  w->EndObject();

  w->Key("workers");
  w->BeginObject();
  w->KV("count", static_cast<std::uint64_t>(stats.worker_seconds.size()));
  double makespan = 0.0;
  double total_work = 0.0;
  for (double s : stats.worker_seconds) {
    makespan = s > makespan ? s : makespan;
    total_work += s;
  }
  w->KV("makespan_seconds", makespan);
  w->KV("total_work_seconds", total_work);
  w->Key("busy_seconds");
  w->BeginArray();
  for (double s : stats.worker_seconds) w->Double(s);
  w->EndArray();
  w->Key("embeddings");
  w->BeginArray();
  for (std::uint64_t e : stats.worker_embeddings) w->Uint(e);
  w->EndArray();
  w->EndObject();

  w->Key("budget");
  w->BeginObject();
  w->KV("active", stats.budget.active);
  w->KV("deadline_seconds", stats.budget.deadline_seconds);
  w->KV("memory_budget_bytes",
        static_cast<std::uint64_t>(stats.budget.memory_budget_bytes));
  w->KV("charged_bytes", static_cast<std::uint64_t>(stats.budget.charged_bytes));
  w->KV("polls", stats.budget.polls);
  w->KV("deadline_exceeded", stats.budget.deadline_exceeded);
  w->KV("memory_exceeded", stats.budget.memory_exceeded);
  w->KV("cancelled", stats.budget.cancelled);
  w->EndObject();

  w->EndObject();
}

std::string MetricsReportJson(const MatchResult& result,
                              const MetricsReportOptions& options) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", static_cast<std::uint64_t>(kMetricsSchemaVersion));
  w.KV("embeddings", result.embedding_count);
  w.KV("termination", TerminationReasonName(result.termination));
  w.Key("stats");
  AppendMatchStatsJson(result.stats, &w);

  if (result.profile.has_value()) {
    w.Key("profile");
    AppendQueryProfileJson(*result.profile, &w);
  }

  if (options.include_registry) {
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    w.Key("registry");
    w.BeginObject();
    w.Key("counters");
    w.BeginObject();
    for (const auto& [name, value] : snap.counters) w.KV(name, value);
    w.EndObject();
    w.Key("gauges");
    w.BeginObject();
    for (const auto& [name, value] : snap.gauges) w.KV(name, value);
    w.EndObject();
    w.Key("histograms");
    w.BeginObject();
    for (const auto& [name, h] : snap.histograms) {
      w.Key(name);
      w.BeginObject();
      w.KV("count", h.count);
      w.KV("sum", h.sum);
      w.KV("min", h.min);
      w.KV("max", h.max);
      w.KV("mean", h.Mean());
      w.KV("p50", h.Percentile(50));
      w.KV("p90", h.Percentile(90));
      w.KV("p99", h.Percentile(99));
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }

  if (options.include_trace && !Tracer::Global().Events().empty()) {
    w.Key("trace");
    Tracer::Global().AppendJson(&w);
  }

  w.EndObject();
  return std::move(w).Take();
}

}  // namespace ceci
