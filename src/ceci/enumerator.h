// Parallel-friendly embedding enumeration by set intersection (paper §4).
//
// One Enumerator instance is a single worker's backtracking engine over a
// refined CECI. For a query vertex u the matching candidates are the
// intersection of the TE list entry for the parent's match with the NTE
// list entries for every already-matched NTE neighbor — no edge
// verification on the data graph is needed (Lemma 2). An ablation flag
// falls back to TE-only candidates plus per-edge verification, reproducing
// the CFLMatch-style behaviour the paper measures 13%-170% slower (§4.1).
//
// Workers share an optional atomic emission budget for first-k queries.
#ifndef CECI_CECI_ENUMERATOR_H_
#define CECI_CECI_ENUMERATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ceci/ceci_index.h"
#include "ceci/flat_index.h"
#include "ceci/query_tree.h"
#include "ceci/symmetry.h"
#include "graph/graph.h"
#include "util/budget.h"

namespace ceci {

/// Called once per embedding with the mapping indexed by query vertex id
/// (mapping[u] = matched data vertex). Return false to stop enumeration.
/// Under parallel enumeration the visitor is invoked concurrently and must
/// be thread-safe.
using EmbeddingVisitor = std::function<bool(std::span<const VertexId>)>;

struct EnumOptions {
  /// Intersect NTE candidate lists (the paper's approach). When false,
  /// candidates come from the TE list only and every non-tree edge is
  /// verified against the data graph adjacency (ablation baseline).
  bool nte_intersection = true;
  /// Counting fast path: when no visitor is installed, the last
  /// matching-order position adds |candidates| to the count instead of
  /// recursing once per candidate (the candidate set already encodes
  /// injectivity, symmetry, and every remaining edge constraint). Exact
  /// by construction; disabled by default so recursive-call statistics
  /// stay comparable with the paper's Fig. 18 accounting.
  bool leaf_count_shortcut = false;
  /// Symmetry constraints; pass SymmetryConstraints::None(n) to disable.
  const SymmetryConstraints* symmetry = nullptr;
  /// Track recursive calls per matching-order position (EnumStats::
  /// calls_per_position, profiler support). Off: the per-position vector
  /// stays empty and the recursion pays one size check.
  bool per_position_stats = false;
};

struct EnumStats {
  /// Backtracking expansions — the paper's search-space proxy (Fig. 18).
  std::uint64_t recursive_calls = 0;
  /// Candidate-list intersections performed.
  std::uint64_t intersections = 0;
  /// Elements fed into those intersections (summed input-list lengths) and
  /// elements surviving them — the pair exposes hot-path selectivity.
  std::uint64_t intersection_elements_in = 0;
  std::uint64_t intersection_elements_out = 0;
  /// HasEdge probes (nonzero only in the edge-verification ablation).
  std::uint64_t edge_verifications = 0;
  /// Embeddings this worker emitted.
  std::uint64_t embeddings = 0;
  /// Recursive calls per matching-order position (Fig. 18 per-level
  /// accounting). Empty unless EnumOptions::per_position_stats; the
  /// leaf-count shortcut never recurses into the last position, so that
  /// entry reads 0 under the fast path.
  std::vector<std::uint64_t> calls_per_position;

  EnumStats& operator+=(const EnumStats& other) {
    recursive_calls += other.recursive_calls;
    intersections += other.intersections;
    intersection_elements_in += other.intersection_elements_in;
    intersection_elements_out += other.intersection_elements_out;
    edge_verifications += other.edge_verifications;
    embeddings += other.embeddings;
    if (calls_per_position.size() < other.calls_per_position.size()) {
      calls_per_position.resize(other.calls_per_position.size(), 0);
    }
    for (std::size_t i = 0; i < other.calls_per_position.size(); ++i) {
      calls_per_position[i] += other.calls_per_position[i];
    }
    return *this;
  }
};

/// Single-worker backtracking enumerator over a refined CECI. Accepts
/// either index layout through IndexView: against the pointer-rich
/// CeciIndex the hot path is the classic sorted-id intersection; against
/// a FlatCeciIndex it runs in *rank space* — TE/NTE entries store ranks
/// into the child's candidate array, arrays go through the same SIMD
/// sorted-u32 kernels, bitmap entries through word-wise AND/popcount, and
/// ids materialize only for survivors.
class Enumerator {
 public:
  Enumerator(const Graph& data, const QueryTree& tree, IndexView index,
             const EnumOptions& options);

  /// Graph-free variant: enumeration by intersection never touches the
  /// data graph, so index-only callers (e.g. the out-of-core §5 path,
  /// where no in-memory Graph exists) can omit it. Requires
  /// options.nte_intersection == true.
  Enumerator(const QueryTree& tree, IndexView index,
             const EnumOptions& options);

  /// Installs a cross-worker emission budget: enumeration stops once
  /// `counter` (shared by all workers) reaches `limit`.
  void SetSharedLimit(std::atomic<std::uint64_t>* counter,
                      std::uint64_t limit);

  /// Installs a cross-worker abort flag: set when any worker's visitor
  /// returns false, checked by every worker like the shared limit.
  void SetAbortFlag(std::atomic<bool>* flag) { abort_flag_ = flag; }

  /// Installs a cooperative execution budget (deadline / memory /
  /// cancellation; see util/budget.h). An exhausted budget stops the
  /// recursion like the abort flag (one relaxed load per level); the
  /// deadline and token are additionally polled every
  /// `tracker->stride()` recursive calls.
  void SetBudget(BudgetTracker* tracker) {
    budget_ = tracker;
    budget_countdown_ = tracker != nullptr ? tracker->stride() : 0;
  }

  /// Bytes of per-worker enumeration state (mapping, injectivity bitmap,
  /// per-depth scratch); charged against the memory budget by the
  /// scheduler. Scratch growth during the search is not re-charged — the
  /// bound is the initial allocation, documented in docs/robustness.md.
  std::size_t StateBytes() const;

  /// True once this worker observed a stop condition (visitor false,
  /// shared limit, or the abort flag).
  bool stopped() const { return stopped_; }

  /// Enumerates every embedding cluster (all pivots). Returns embeddings
  /// emitted by this call. `visitor` may be null (count only).
  std::uint64_t EnumerateAll(const EmbeddingVisitor* visitor);

  /// Enumerates the cluster of one pivot.
  std::uint64_t EnumerateCluster(VertexId pivot,
                                 const EmbeddingVisitor* visitor);

  /// Enumerates from a partial embedding: prefix[i] is the match of
  /// matching_order()[i]. The prefix must be a valid partial embedding
  /// (extreme-cluster decomposition produces exactly these).
  std::uint64_t EnumerateFromPrefix(std::span<const VertexId> prefix,
                                    const EmbeddingVisitor* visitor);

  /// Candidate extensions for u given an explicit partial mapping
  /// (mapping[w] = kInvalidVertex when unmatched). Applies TE/NTE
  /// intersection, injectivity, and symmetry bounds — the same rule the
  /// recursion uses. Exposed for extreme-cluster decomposition.
  void CollectExtensions(std::span<const VertexId> mapping, VertexId u,
                         std::vector<VertexId>* out);

  const EnumStats& stats() const { return stats_; }

  /// Read-only views of the enumeration state for invariant auditing (see
  /// analysis/invariant_auditor.h): the partial mapping indexed by query
  /// vertex and the injectivity bitset (64-bit blocks by data vertex id).
  /// Only meaningful while the enumerator is quiescent — between calls, or
  /// from inside an embedding visitor.
  std::span<const VertexId> mapping_snapshot() const { return mapping_; }
  std::span<const std::uint64_t> used_bitmap() const { return used_; }

 private:
  bool Recurse(std::size_t pos);
  bool Emit();
  bool LimitReached() const;
  // Shared candidate-generation core; scratch is the per-depth buffer.
  // Requires used_ to mirror the data vertices present in `mapping`.
  void Candidates(std::span<const VertexId> mapping, VertexId u,
                  std::vector<VertexId>* out);
  // Counting twin of Candidates for the last matching-order position:
  // computes |candidates| through the counting intersection kernel without
  // materializing the final level's list. Requires options_.nte_intersection
  // (the edge-verification ablation must probe each candidate).
  std::uint64_t CountLeafCandidates(VertexId u);
  // Flat-layout twins of Candidates / CountLeafCandidates, operating in
  // rank space (see class comment). Dispatched to when flat_ != nullptr.
  void CandidatesFlat(std::span<const VertexId> mapping, VertexId u,
                      std::vector<VertexId>* out);
  // The edge-verification ablation filter over `out` (no-op when
  // options_.nte_intersection is on or u has no incoming NTEs).
  void ApplyEdgeVerification(std::span<const VertexId> mapping, VertexId u,
                             std::vector<VertexId>* out);
  std::uint64_t CountLeafCandidatesFlat(VertexId u);
  // Collects the TE (+ NTE when `with_nte`) entry refs for u into
  // entry_scratch_ and computes the symmetry id window [lo, hi) — kept in
  // id space; consumers clamp rank arrays through the cand[] projection.
  // Returns false when the result is certainly empty (empty window or an
  // absent/empty entry).
  bool GatherFlatRefs(std::span<const VertexId> mapping, VertexId u,
                      bool with_nte, VertexId* lo, VertexId* hi);
  // The symmetry-breaking [lo, hi) admissible window for u under `mapping`
  // (hi == kInvalidVertex when unbounded above).
  void SymmetryRange(std::span<const VertexId> mapping, VertexId u,
                     VertexId* lo, VertexId* hi) const;
  void InitUsedBitmap();

  // Injectivity bitmap over data vertex ids, kept in sync with mapping_ by
  // Recurse / EnumerateFromPrefix (and mirrored temporarily by
  // CollectExtensions). Replaces an O(|mapping|) scan per candidate.
  void MarkUsed(VertexId v) {
    const std::size_t w = v >> 6;
    if (w >= used_.size()) used_.resize(w + 1, 0);
    used_[w] |= std::uint64_t{1} << (v & 63);
  }
  void UnmarkUsed(VertexId v) {
    const std::size_t w = v >> 6;
    if (w < used_.size()) used_[w] &= ~(std::uint64_t{1} << (v & 63));
  }
  bool IsUsed(VertexId v) const {
    const std::size_t w = v >> 6;
    return w < used_.size() && ((used_[w] >> (v & 63)) & 1) != 0;
  }

  const Graph* data_;  // null only in the graph-free intersection mode
  const QueryTree& tree_;
  const CeciIndex* index_;       // exactly one of index_ / flat_ is set
  const FlatCeciIndex* flat_;
  EnumOptions options_;
  const SymmetryConstraints* symmetry_;

  std::vector<VertexId> mapping_;             // by query vertex id
  std::vector<std::uint64_t> used_;           // injectivity bitmap, by data id
  std::vector<VertexId> flipped_scratch_;     // CollectExtensions bookkeeping
  std::vector<std::vector<VertexId>> scratch_;  // per matching-order depth
  std::vector<std::span<const VertexId>> span_scratch_;
  // Flat-path scratch: gathered entry refs, surviving ranks, the array-side
  // intersection result, and the bitmap accumulator.
  std::vector<FlatCeciIndex::EntryRef> entry_scratch_;
  std::vector<VertexId> rank_scratch_;
  std::vector<VertexId> rank_tmp_;
  std::vector<std::uint64_t> bitmap_scratch_;
  EnumStats stats_;
  const EmbeddingVisitor* visitor_ = nullptr;
  std::atomic<std::uint64_t>* shared_counter_ = nullptr;
  std::uint64_t shared_limit_ = 0;
  std::atomic<bool>* abort_flag_ = nullptr;
  BudgetTracker* budget_ = nullptr;
  std::uint64_t budget_countdown_ = 0;
  bool stopped_ = false;
};

}  // namespace ceci

#endif  // CECI_CECI_ENUMERATOR_H_
