#include "ceci/streaming_builder.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace ceci {

StreamingCeciBuilder::StreamingCeciBuilder(OnDemandCsr* store)
    : store_(store) {
  CECI_CHECK(store != nullptr);
}

Status StreamingCeciBuilder::PrepareResidentIndexes() {
  if (prepared_) return Status::Ok();
  const std::size_t n = store_->num_vertices();

  // Label buckets from the resident label runs.
  Label max_label = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (Label l : store_->labels(v)) max_label = std::max(max_label, l);
  }
  num_labels_ = static_cast<std::size_t>(max_label) + 1;
  bucket_offsets_.assign(num_labels_ + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (Label l : store_->labels(v)) ++bucket_offsets_[l + 1];
  }
  for (std::size_t l = 0; l < num_labels_; ++l) {
    bucket_offsets_[l + 1] += bucket_offsets_[l];
  }
  bucket_vertices_.resize(bucket_offsets_[num_labels_]);
  {
    std::vector<std::uint64_t> cursor(bucket_offsets_.begin(),
                                      bucket_offsets_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      for (Label l : store_->labels(v)) bucket_vertices_[cursor[l]++] = v;
    }
  }

  // NLC runs: one streaming pass over the adjacency section.
  nlc_offsets_.assign(n + 1, 0);
  nlc_entries_.clear();
  std::vector<VertexId> adj;
  std::vector<Label> seen;
  for (VertexId v = 0; v < n; ++v) {
    CECI_RETURN_IF_ERROR(store_->ReadNeighbors(v, &adj));
    seen.clear();
    for (VertexId w : adj) {
      for (Label l : store_->labels(w)) seen.push_back(l);
    }
    std::sort(seen.begin(), seen.end());
    for (std::size_t i = 0; i < seen.size();) {
      std::size_t j = i;
      while (j < seen.size() && seen[j] == seen[i]) ++j;
      nlc_entries_.push_back(
          NlcIndex::Entry{seen[i], static_cast<std::uint32_t>(j - i)});
      i = j;
    }
    nlc_offsets_[v + 1] = nlc_entries_.size();
  }

  prepared_ = true;
  return Status::Ok();
}

bool StreamingCeciBuilder::PassesFilters(
    const Graph& query, VertexId u,
    std::span<const NlcIndex::Entry> profile, VertexId v) const {
  if (store_->degree(v) < query.degree(u)) return false;
  // Label containment (both sides sorted).
  auto have = store_->labels(v);
  std::size_t i = 0;
  for (Label need : query.labels(u)) {
    while (i < have.size() && have[i] < need) ++i;
    if (i == have.size() || have[i] != need) return false;
  }
  // NLC coverage.
  auto runs = NlcOf(v);
  std::size_t k = 0;
  for (const NlcIndex::Entry& need : profile) {
    while (k < runs.size() && runs[k].label < need.label) ++k;
    if (k == runs.size() || runs[k].label != need.label ||
        runs[k].count < need.count) {
      return false;
    }
  }
  return true;
}

std::vector<VertexId> StreamingCeciBuilder::CollectRootCandidates(
    const Graph& query, VertexId u) const {
  CECI_CHECK(prepared_);
  auto profile = NlcIndex::Profile(query, u);
  // Scan the rarest label bucket of u.
  Label best = query.label(u);
  std::uint64_t best_size = ~std::uint64_t{0};
  for (Label l : query.labels(u)) {
    if (l >= num_labels_) return {};
    std::uint64_t size = bucket_offsets_[l + 1] - bucket_offsets_[l];
    if (size < best_size) {
      best_size = size;
      best = l;
    }
  }
  std::vector<VertexId> out;
  for (std::uint64_t i = bucket_offsets_[best];
       i < bucket_offsets_[best + 1]; ++i) {
    VertexId v = bucket_vertices_[i];
    if (PassesFilters(query, u, profile, v)) out.push_back(v);
  }
  return out;  // bucket is in ascending vertex order
}

Result<CeciIndex> StreamingCeciBuilder::Build(
    const Graph& query, const QueryTree& tree,
    const std::vector<VertexId>* root_candidates, BuildStats* stats) {
  if (!prepared_) {
    return Status::InvalidArgument(
        "call PrepareResidentIndexes() before Build()");
  }
  Timer timer;
  BuildStats local;
  if (stats == nullptr) stats = &local;
  *stats = BuildStats{};

  const std::size_t nq = query.num_vertices();
  const std::size_t nd = store_->num_vertices();
  CeciIndex index(nq);

  std::vector<std::vector<NlcIndex::Entry>> profiles(nq);
  for (VertexId u = 0; u < nq; ++u) {
    profiles[u] = NlcIndex::Profile(query, u);
  }
  std::vector<std::vector<char>> alive(nq, std::vector<char>(nd, 0));
  std::vector<char> processed(nq, 0);

  const VertexId root = tree.root();
  index.at(root).candidates = root_candidates != nullptr
                                  ? *root_candidates
                                  : CollectRootCandidates(query, root);
  for (VertexId v : index.at(root).candidates) alive[root][v] = 1;
  processed[root] = 1;

  auto cascade_remove = [&](VertexId u_owner,
                            const std::vector<VertexId>& dead) {
    if (dead.empty()) return;
    for (VertexId v : dead) alive[u_owner][v] = 0;
    auto& cands = index.at(u_owner).candidates;
    cands.erase(std::remove_if(cands.begin(), cands.end(),
                               [&](VertexId v) {
                                 return !alive[u_owner][v];
                               }),
                cands.end());
    for (VertexId u_c : tree.children(u_owner)) {
      if (!processed[u_c]) continue;
      index.at(u_c).te.Prune(
          [&](VertexId key) { return alive[u_owner][key] != 0; },
          [](VertexId) { return true; });
    }
    for (std::uint32_t e : tree.nte_out(u_owner)) {
      VertexId u_c = tree.non_tree_edges()[e].child;
      if (!processed[u_c] || index.at(u_c).nte.empty()) continue;
      auto ids = tree.nte_in(u_c);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        if (ids[k] == e) {
          index.at(u_c).nte[k].Prune(
              [&](VertexId key) { return alive[u_owner][key] != 0; },
              [](VertexId) { return true; });
        }
      }
    }
  };

  std::vector<VertexId> adj;
  for (VertexId u : tree.matching_order()) {
    if (u == root) continue;
    const VertexId u_p = tree.parent(u);
    CeciVertexData& ud = index.at(u);
    const std::vector<VertexId>& frontier = index.at(u_p).candidates;

    // TE expansion: one storage read per frontier vertex.
    std::vector<VertexId> dead_frontier;
    for (VertexId v_f : frontier) {
      ++stats->frontier_expansions;
      Status st = store_->ReadNeighbors(v_f, &adj);
      if (!st.ok()) return st;
      stats->neighbors_scanned += adj.size();
      std::vector<VertexId> vals;
      for (VertexId v : adj) {
        if (!PassesFilters(query, u, profiles[u], v)) {
          ++stats->rejected_nlc;  // aggregate rejection counter
          continue;
        }
        vals.push_back(v);
      }
      if (vals.empty()) {
        dead_frontier.push_back(v_f);
      } else {
        ud.te.Append(v_f, std::move(vals));
      }
    }
    for (std::size_t i = 0; i < ud.te.num_keys(); ++i) {
      for (VertexId v : ud.te.values_at(i)) {
        if (!alive[u][v]) {
          alive[u][v] = 1;
          ud.candidates.push_back(v);
        }
      }
    }
    std::sort(ud.candidates.begin(), ud.candidates.end());
    stats->cascade_removals += dead_frontier.size();
    cascade_remove(u_p, dead_frontier);

    // NTE expansion.
    auto nte_ids = tree.nte_in(u);
    ud.nte.resize(nte_ids.size());
    for (std::size_t k = 0; k < nte_ids.size(); ++k) {
      const VertexId u_n = tree.non_tree_edges()[nte_ids[k]].parent;
      std::vector<VertexId> dead_nte;
      for (VertexId v_n : index.at(u_n).candidates) {
        ++stats->frontier_expansions;
        Status st = store_->ReadNeighbors(v_n, &adj);
        if (!st.ok()) return st;
        stats->neighbors_scanned += adj.size();
        std::vector<VertexId> vals;
        for (VertexId v : adj) {
          if (alive[u][v]) vals.push_back(v);
        }
        if (vals.empty()) {
          dead_nte.push_back(v_n);
        } else {
          ud.nte[k].Append(v_n, std::move(vals));
        }
      }
      stats->nte_cascade_removals += dead_nte.size();
      cascade_remove(u_n, dead_nte);
    }

    processed[u] = 1;
  }

  stats->seconds = timer.Seconds();
  return index;
}

}  // namespace ceci
