// CachedMatcher: a multi-query session over one data graph.
//
// Dashboards and monitoring workloads re-run the same small set of query
// shapes continuously. The CECI for a (data, query, matching order) triple
// is immutable once refined, so this facade memoizes the preprocessed
// query tree, symmetry constraints, and refined index per structural query
// key and pays only enumeration on repeats — the in-memory counterpart of
// the on-disk persistence in `ceci/index_io.h`.
#ifndef CECI_CECI_CACHED_MATCHER_H_
#define CECI_CECI_CACHED_MATCHER_H_

#include <map>
#include <memory>
#include <string>

#include "ceci/matcher.h"
#include "util/sync.h"

namespace ceci {

/// Thread-safe memoizing wrapper around the CECI pipeline.
class CachedMatcher {
 public:
  /// Indexes `data` (NLC) once; the graph must outlive the matcher.
  explicit CachedMatcher(const Graph& data);

  CachedMatcher(const CachedMatcher&) = delete;
  CachedMatcher& operator=(const CachedMatcher&) = delete;

  /// Same contract as CeciMatcher::Match; construction and refinement are
  /// served from the cache when the same query shape (and order strategy /
  /// symmetry setting) was matched before. Budgets (MatchOptions::budget)
  /// and a shared worker pool (MatchOptions::pool) are honoured exactly as
  /// in CeciMatcher: a budget that trips while building a fresh entry
  /// returns a truthfully-labelled partial result and the partial index is
  /// *not* cached. Concurrent Match() calls are safe; two threads missing
  /// the same key may both build (first writer wins, the loser's entry is
  /// dropped) — enumeration against cached entries is read-only.
  Result<MatchResult> Match(const Graph& query, const MatchOptions& options,
                            const EmbeddingVisitor* visitor = nullptr);

  /// Convenience count.
  Result<std::uint64_t> Count(const Graph& query, std::size_t threads = 1);

  /// Loads a prebuilt flat index image (index_io, written by
  /// `ceci_query --save-index`) and installs it as a pre-warmed cache
  /// entry, keyed exactly as if the image's stored pattern had been
  /// matched with default MatchOptions — so serving traffic for that
  /// query shape skips construction and refinement entirely. With
  /// `use_mmap` the arena stays memory-mapped read-only: every worker,
  /// connection, and process serving the same file shares one physical
  /// copy. Fails with kInvalidArgument when the image carries no pattern
  /// text, was built for a different matching order than this data
  /// graph's default pipeline produces, or references data vertices this
  /// graph does not have; kCorruption/kIoError propagate from the loader.
  Status InstallPrebuilt(const std::string& path, bool use_mmap = true);

  std::size_t cache_entries() const;
  std::uint64_t cache_hits() const {
    MutexLock lock(mutex_);
    return hits_;
  }
  std::uint64_t cache_misses() const {
    MutexLock lock(mutex_);
    return misses_;
  }
  void ClearCache();

  /// Structural cache key of a query under given options: labels + edges +
  /// order strategy + symmetry flag. Exposed for tests.
  static std::string QueryKey(const Graph& query,
                              const MatchOptions& options);

 private:
  struct Entry;

  const Graph& data_;
  NlcIndex nlc_;
  // Guards the map and the hit/miss tallies; entries themselves are
  // immutable once published, so enumeration never holds the lock.
  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<const Entry>> cache_
      CECI_GUARDED_BY(mutex_);
  std::uint64_t hits_ CECI_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ CECI_GUARDED_BY(mutex_) = 0;
};

}  // namespace ceci

#endif  // CECI_CECI_CACHED_MATCHER_H_
