#include "ceci/query_tree.h"

#include <algorithm>
#include <deque>

namespace ceci {

Result<QueryTree> QueryTree::Build(const Graph& query, VertexId root) {
  const std::size_t n = query.num_vertices();
  if (root >= n) return Status::InvalidArgument("root out of range");

  QueryTree tree;
  tree.root_ = root;
  tree.parent_.assign(n, kInvalidVertex);
  tree.children_.assign(n, {});
  tree.depth_.assign(n, 0);
  tree.bfs_order_.reserve(n);

  std::vector<char> visited(n, 0);
  std::deque<VertexId> frontier = {root};
  visited[root] = 1;
  while (!frontier.empty()) {
    VertexId u = frontier.front();
    frontier.pop_front();
    tree.bfs_order_.push_back(u);
    for (VertexId w : query.neighbors(u)) {
      if (!visited[w]) {
        visited[w] = 1;
        tree.parent_[w] = u;
        tree.children_[u].push_back(w);
        tree.depth_[w] = tree.depth_[u] + 1;
        frontier.push_back(w);
      }
    }
  }
  if (tree.bfs_order_.size() != n) {
    return Status::InvalidArgument("query graph is disconnected");
  }

  // Collect non-tree edges (u < w canonical, orientation set below).
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : query.neighbors(u)) {
      if (u < w && tree.parent_[w] != u && tree.parent_[u] != w) {
        tree.ntes_.push_back(NonTreeEdge{u, w});
      }
    }
  }

  Status st = tree.SetMatchingOrder(tree.bfs_order_);
  if (!st.ok()) return st;
  return tree;
}

Status QueryTree::SetMatchingOrder(std::vector<VertexId> order) {
  const std::size_t n = parent_.size();
  if (order.size() != n) {
    return Status::InvalidArgument("matching order has wrong length");
  }
  std::vector<std::size_t> pos(n, n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    VertexId u = order[i];
    if (u >= n || pos[u] != n) {
      return Status::InvalidArgument("matching order is not a permutation");
    }
    pos[u] = i;
  }
  for (VertexId u = 0; u < n; ++u) {
    if (parent_[u] != kInvalidVertex && pos[parent_[u]] >= pos[u]) {
      return Status::InvalidArgument(
          "matching order is not a topological order of the query tree");
    }
  }
  matching_order_ = std::move(order);
  order_pos_ = std::move(pos);
  ReorientNonTreeEdges();
  return Status::Ok();
}

void QueryTree::ReorientNonTreeEdges() {
  const std::size_t n = parent_.size();
  nte_in_.assign(n, {});
  nte_out_.assign(n, {});
  for (std::uint32_t i = 0; i < ntes_.size(); ++i) {
    NonTreeEdge& e = ntes_[i];
    if (order_pos_[e.parent] > order_pos_[e.child]) {
      std::swap(e.parent, e.child);
    }
    nte_out_[e.parent].push_back(i);
    nte_in_[e.child].push_back(i);
  }
}

}  // namespace ceci
