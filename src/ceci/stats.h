// Aggregated per-query statistics reported by CeciMatcher. Feeds Table 2
// (index size), Fig. 18 (recursive calls), Fig. 19 (phase breakdown), and
// Fig. 15 (phase timings).
#ifndef CECI_CECI_STATS_H_
#define CECI_CECI_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ceci/ceci_builder.h"
#include "ceci/enumerator.h"
#include "ceci/extreme_cluster.h"
#include "ceci/profiler.h"
#include "ceci/refinement.h"
#include "graph/types.h"
#include "util/budget.h"

namespace ceci {

struct MatchStats {
  // Phase wall times (seconds).
  double preprocess_seconds = 0.0;
  double build_seconds = 0.0;
  double refine_seconds = 0.0;
  double enumerate_seconds = 0.0;
  double total_seconds = 0.0;

  // Index accounting (§3.4 / Table 2).
  std::size_t ceci_bytes = 0;
  std::size_t ceci_bytes_unrefined = 0;
  std::size_t theoretical_bytes = 0;
  std::size_t candidate_edges = 0;
  std::size_t candidate_edges_unrefined = 0;

  // Flat-layout accounting (arena-backed index; all zero when
  // MatchOptions::flat_index is off). flat_bytes is *exact* — the arena
  // size enumeration reads — where ceci_bytes is the pointer layout's
  // estimate; the entry split shows how the hybrid rule fell.
  std::size_t flat_bytes = 0;
  std::size_t flat_array_entries = 0;
  std::size_t flat_bitmap_entries = 0;

  // Cluster accounting (§4.2-4.3).
  std::size_t embedding_clusters = 0;
  Cardinality total_cardinality = 0;
  DecomposeStats decomposition;

  // Sub-phase details.
  BuildStats build;
  RefineStats refine;
  EnumStats enumeration;
  std::vector<double> worker_seconds;
  /// Embeddings emitted per enumeration worker; their sum equals
  /// MatchResult::embedding_count (the invariant auditor checks this —
  /// see AuditMatchResult). Empty when enumeration never ran (infeasible
  /// query or a budget tripped earlier in the pipeline).
  std::vector<std::uint64_t> worker_embeddings;

  // Symmetry.
  std::size_t automorphisms_broken = 0;

  /// The refined index came from the CachedMatcher's memo (no build or
  /// refine ran for this query); always false for uncached matchers.
  bool index_cache_hit = false;

  /// Execution-budget outcome (resilient execution layer); budget.active
  /// is false when MatchOptions::budget was default (unbounded).
  BudgetStats budget;
};

struct MatchResult {
  std::uint64_t embedding_count = 0;
  /// Why the match stopped. Anything but kCompleted means
  /// embedding_count is a partial (lower-bound) count.
  TerminationReason termination = TerminationReason::kCompleted;
  MatchStats stats;
  /// Per-query EXPLAIN data; present only when MatchOptions::profile.
  /// Empty-but-present (no vertices) for infeasible queries, where no
  /// index is ever built.
  std::optional<QueryProfile> profile;
};

}  // namespace ceci

#endif  // CECI_CECI_STATS_H_
