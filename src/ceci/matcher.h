// CeciMatcher: the library's top-level subgraph-matching API.
//
// Runs the full CECI pipeline of the paper: preprocessing (§2.2) → CECI
// creation with BFS filtering (§3.2) → reverse-BFS refinement (§3.3) →
// parallel set-intersection enumeration with workload balancing (§4).
//
// Typical use:
//
//   ceci::CeciMatcher matcher(data_graph);
//   ceci::MatchOptions options;
//   options.threads = 8;
//   auto result = matcher.Match(query_graph, options);
//   if (result.ok()) std::cout << result->embedding_count;
#ifndef CECI_CECI_MATCHER_H_
#define CECI_CECI_MATCHER_H_

#include <cstdint>
#include <functional>

#include "ceci/matching_order.h"
#include "ceci/scheduler.h"
#include "ceci/stats.h"
#include "graph/graph.h"
#include "graph/nlc_index.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ceci {

struct MatchOptions {
  /// Worker threads for filtering and enumeration.
  std::size_t threads = 1;
  /// Workload distribution policy (§4.2).
  Distribution distribution = Distribution::kCoarseDynamic;
  /// Extreme-cluster threshold factor β (§4.3).
  double beta = 0.2;
  /// Stop after this many embeddings (paper's first-1,024 experiments);
  /// 0 enumerates everything.
  std::uint64_t limit = 0;
  /// Matching-order heuristic (§2.2).
  OrderStrategy order = OrderStrategy::kBfs;
  /// List each embedding once, breaking query automorphisms (§2.2).
  bool break_automorphisms = true;
  /// Set-intersection NTE handling (§4); false = edge-verification
  /// ablation.
  bool nte_intersection = true;
  /// Counting fast path for visitor-less matches: the final matching-order
  /// position contributes |candidates| without recursing per candidate.
  /// Exact; off by default to keep search statistics paper-comparable.
  bool leaf_count_shortcut = false;
  /// Collect a QueryProfile (MatchResult::profile): per-vertex pipeline
  /// candidate counts, measured index bytes, cluster/work-unit skew, and
  /// worker occupancy. Opt-in; when off no per-candidate instrumentation
  /// runs (every profiled quantity is a counter delta or a post-hoc walk,
  /// same discipline as TraceSpan). See src/ceci/profiler.h.
  bool profile = false;
  /// Enumerate from the arena-backed flat layout (ceci/flat_index.h): after
  /// refinement the index is frozen into one contiguous arena with hybrid
  /// array/bitmap candidate sets, and the enumerator runs in rank space.
  /// Default on — it is the production hot path. Off reproduces the
  /// pointer-layout behaviour exactly (layout A/B comparisons, Table 2).
  bool flat_index = true;
  /// Invoked with the CECI right after construction (refined == false) and
  /// again after refinement + freeze (refined == true). Hook for the
  /// invariant auditor (analysis/invariant_auditor.h, `ceci_query --audit`)
  /// and debug-run validation; must not mutate the index. Not called when
  /// preprocessing proves the query infeasible (no index is built), nor
  /// with a partial index after the execution budget trips mid-pipeline.
  std::function<void(const QueryTree& tree, const CeciIndex& index,
                     bool refined)>
      index_inspector;
  /// Invoked with the frozen flat index right after it is built (only when
  /// `flat_index` is set and the pipeline reaches enumeration). Hook for
  /// flat-layout auditing and `ceci_query --save-index`; must not mutate
  /// or retain the reference past the call (Clone() to keep it).
  std::function<void(const QueryTree& tree, const FlatCeciIndex& flat)>
      flat_inspector;
  /// Per-query resource caps: wall-clock deadline, index + enumeration
  /// byte budget, external cancellation token (util/budget.h). Default =
  /// unbounded, zero overhead. When a cap trips, Match() returns a
  /// partial MatchResult whose `termination` names the cap; a tripped
  /// budget mid-build/mid-refine skips the remaining phases (including
  /// the profile — a partial index has no meaningful EXPLAIN).
  ExecutionBudget budget;
  /// Shared worker pool (serving mode; see src/serve/query_service.h).
  /// When set, filtering and enumeration dispatch to this pool instead of
  /// creating a per-query pool/threads: the calling thread always runs
  /// worker 0 inline, so concurrent Match() calls sharing one pool are
  /// work-conserving even when the pool is saturated. The pool must
  /// outlive the call. When null (default), `threads > 1` spins up
  /// per-query threads exactly as before.
  ThreadPool* pool = nullptr;
};

/// Reusable matcher over one data graph. Thread-compatible: concurrent
/// Match() calls on the same instance are safe (all mutable state is
/// per-call); building the NLC index happens once in the constructor.
class CeciMatcher {
 public:
  /// Indexes `data` (neighborhood label counts). The graph must outlive
  /// the matcher.
  explicit CeciMatcher(const Graph& data);

  /// Finds embeddings of `query` in the data graph. `visitor`, when given,
  /// receives each embedding (thread-safe callback required if
  /// options.threads > 1).
  Result<MatchResult> Match(const Graph& query, const MatchOptions& options,
                            const EmbeddingVisitor* visitor = nullptr) const;

  /// Convenience: count all embeddings with default options and `threads`.
  Result<std::uint64_t> Count(const Graph& query,
                              std::size_t threads = 1) const;

  const Graph& data() const { return data_; }
  const NlcIndex& nlc_index() const { return nlc_; }

 private:
  const Graph& data_;
  NlcIndex nlc_;
};

}  // namespace ceci

#endif  // CECI_CECI_MATCHER_H_
