#include "ceci/preprocess.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace ceci {
namespace {

// Chooses the label bucket to scan: the least frequent label of u.
Label ScanLabel(const Graph& data, const Graph& query, VertexId u) {
  Label best = query.label(u);
  std::size_t best_size = std::numeric_limits<std::size_t>::max();
  for (Label l : query.labels(u)) {
    std::size_t size = data.VerticesWithLabel(l).size();
    if (size < best_size) {
      best_size = size;
      best = l;
    }
  }
  return best;
}

// Applies the label containment, degree, and NLC filters.
bool PassesFilters(const Graph& data, const NlcIndex& data_nlc,
                   const Graph& query, VertexId u,
                   std::span<const NlcIndex::Entry> u_profile, VertexId v) {
  if (data.degree(v) < query.degree(u)) return false;
  if (!data.HasAllLabels(v, query.labels(u))) return false;
  return data_nlc.Covers(v, u_profile);
}

}  // namespace

std::size_t CountCandidates(const Graph& data, const NlcIndex& data_nlc,
                            const Graph& query, VertexId u) {
  auto profile = NlcIndex::Profile(query, u);
  std::size_t count = 0;
  for (VertexId v : data.VerticesWithLabel(ScanLabel(data, query, u))) {
    if (PassesFilters(data, data_nlc, query, u, profile, v)) ++count;
  }
  return count;
}

std::vector<VertexId> CollectCandidates(const Graph& data,
                                        const NlcIndex& data_nlc,
                                        const Graph& query, VertexId u) {
  auto profile = NlcIndex::Profile(query, u);
  std::vector<VertexId> out;
  for (VertexId v : data.VerticesWithLabel(ScanLabel(data, query, u))) {
    if (PassesFilters(data, data_nlc, query, u, profile, v)) {
      out.push_back(v);
    }
  }
  // Label buckets are sorted by vertex id, so `out` is already sorted.
  return out;
}

Result<Preprocessed> Preprocess(const Graph& data, const NlcIndex& data_nlc,
                                const Graph& query,
                                const PreprocessOptions& options) {
  if (query.num_vertices() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  Preprocessed out;
  const std::size_t nq = query.num_vertices();
  out.candidate_counts.resize(nq);
  for (VertexId u = 0; u < nq; ++u) {
    out.candidate_counts[u] = CountCandidates(data, data_nlc, query, u);
    if (out.candidate_counts[u] == 0) out.infeasible = true;
  }

  // Root selection (§2.2): argmin |candidate(u)| / degree(u). Isolated
  // query vertices are rejected by QueryTree::Build (disconnected query).
  VertexId root = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < nq; ++u) {
    if (query.degree(u) == 0) continue;
    double cost = static_cast<double>(out.candidate_counts[u]) /
                  static_cast<double>(query.degree(u));
    if (cost < best_cost) {
      best_cost = cost;
      root = u;
    }
  }
  if (nq == 1) root = 0;  // single-vertex query: trivial tree
  out.root = root;

  auto tree = QueryTree::Build(query, root);
  if (!tree.ok()) return tree.status();
  out.tree = std::move(tree).value();

  std::vector<VertexId> order = ComputeMatchingOrder(
      query, out.tree, out.candidate_counts, options.order);
  CECI_RETURN_IF_ERROR(out.tree.SetMatchingOrder(std::move(order)));
  return out;
}

}  // namespace ceci
