#include "ceci/refinement.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {
namespace {

// Dense per-data-vertex scratch maps reused across query vertices.
// Entries are valid only when their stamp matches the current generation,
// so no O(|V|) clears are needed between query vertices.
class DenseScratch {
 public:
  explicit DenseScratch(std::size_t n)
      : stamp_(n, 0), count_(n, 0), card_(n, 0) {}

  void NextGeneration() { ++gen_; }

  void BumpCount(VertexId v) {
    Touch(v);
    ++count_[v];
  }
  std::uint32_t Count(VertexId v) const {
    return stamp_[v] == gen_ ? count_[v] : 0;
  }

  void SetCard(VertexId v, Cardinality c) {
    Touch(v);
    card_[v] = c;
  }
  Cardinality Card(VertexId v) const {
    return stamp_[v] == gen_ ? card_[v] : 0;
  }

 private:
  void Touch(VertexId v) {
    if (stamp_[v] != gen_) {
      stamp_[v] = gen_;
      count_[v] = 0;
      card_[v] = 0;
    }
  }

  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> count_;
  std::vector<Cardinality> card_;
  std::uint32_t gen_ = 1;
};

}  // namespace

void RefineCeci(const QueryTree& tree, std::size_t data_num_vertices,
                CeciIndex* index, RefineStats* stats,
                std::vector<std::uint64_t>* pruned_per_vertex,
                BudgetTracker* budget) {
  Timer timer;
  RefineStats local;
  if (stats == nullptr) stats = &local;
  *stats = RefineStats{};

  const std::size_t nq = tree.num_vertices();
  if (pruned_per_vertex != nullptr) pruned_per_vertex->assign(nq, 0);
  // Aliveness per query vertex over data vertices; drives the pruning.
  std::vector<std::vector<char>> alive(nq,
                                       std::vector<char>(data_num_vertices, 0));
  for (VertexId u = 0; u < nq; ++u) {
    for (VertexId v : index->at(u).candidates) alive[u][v] = 1;
  }

  DenseScratch nte_membership(data_num_vertices);
  DenseScratch child_cards(data_num_vertices);
  std::vector<std::uint32_t> seen_in_list(data_num_vertices, 0);

  bool budget_tripped = false;
  const auto& order = tree.matching_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    // Cooperative budget check, once per reverse-BFS vertex (plus per
    // child below). A trip leaves the index semi-refined; the caller
    // must not enumerate it.
    if (budget != nullptr && budget->Poll()) {
      budget_tripped = true;
      break;
    }
    const VertexId u = *it;
    CeciVertexData& ud = index->at(u);
    const std::uint32_t num_nte = static_cast<std::uint32_t>(ud.nte.size());

    // NTE membership: a candidate of u must appear in the value union of
    // every incoming NTE list (Algorithm 2 line 5). Count, per data
    // vertex, in how many lists it appears (each list counted once).
    if (num_nte > 0) {
      nte_membership.NextGeneration();
      for (std::uint32_t k = 0; k < num_nte; ++k) {
        const CandidateList& list = ud.nte[k];
        for (std::size_t i = 0; i < list.num_keys(); ++i) {
          for (VertexId v : list.values_at(i)) {
            if (seen_in_list[v] != k + 1) {
              seen_in_list[v] = k + 1;
              nte_membership.BumpCount(v);
            }
          }
        }
      }
      // Reset the per-list markers lazily: values touched above carry
      // k+1 <= num_nte; the next query vertex starts from k=0 again, so
      // stale markers are harmless only if list indices differ. Clear the
      // touched entries explicitly to stay correct.
      for (std::uint32_t k = 0; k < num_nte; ++k) {
        const CandidateList& list = ud.nte[k];
        for (std::size_t i = 0; i < list.num_keys(); ++i) {
          for (VertexId v : list.values_at(i)) seen_in_list[v] = 0;
        }
      }
    }

    const auto kids = tree.children(u);
    ud.cardinalities.assign(ud.candidates.size(), 0);
    std::size_t write = 0;
    // Process one tree child at a time with a dense cardinality map; the
    // per-candidate product is accumulated in `partial`.
    std::vector<Cardinality> partial(ud.candidates.size(), 1);
    if (num_nte > 0) {
      for (std::size_t i = 0; i < ud.candidates.size(); ++i) {
        if (nte_membership.Count(ud.candidates[i]) != num_nte) {
          partial[i] = 0;
        }
      }
    }
    for (VertexId u_c : kids) {
      if (budget != nullptr && budget->Poll()) {
        budget_tripped = true;
        break;
      }
      const CeciVertexData& cd = index->at(u_c);
      // Reverse-BFS order guarantees every child was already refined, so
      // its cardinalities are present and parallel to its candidates.
      CECI_DCHECK_EQ(cd.cardinalities.size(), cd.candidates.size())
          << "child u" << u_c << " visited before refinement";
      child_cards.NextGeneration();
      for (std::size_t i = 0; i < cd.candidates.size(); ++i) {
        child_cards.SetCard(cd.candidates[i], cd.cardinalities[i]);
      }
      const CandidateList& te = cd.te;
      for (std::size_t i = 0; i < ud.candidates.size(); ++i) {
        if (partial[i] == 0) continue;
        Cardinality sum = 0;
        for (VertexId v_c : te.Find(ud.candidates[i])) {
          sum = SaturatingAdd(sum, child_cards.Card(v_c));
        }
        partial[i] = SaturatingMul(partial[i], sum);
      }
    }
    if (budget_tripped) break;  // skip the prune for this half-done vertex
    for (std::size_t i = 0; i < ud.candidates.size(); ++i) {
      const VertexId v = ud.candidates[i];
      if (partial[i] == 0) {
        alive[u][v] = 0;
        ++stats->pruned_candidates;
        if (pruned_per_vertex != nullptr) ++(*pruned_per_vertex)[u];
      } else {
        ud.candidates[write] = v;
        ud.cardinalities[write] = partial[i];
        ++write;
      }
    }
    ud.candidates.resize(write);
    ud.cardinalities.resize(write);
  }

  // Compaction sweep: drop dead keys and values everywhere. Skipped on a
  // budget trip: the matcher discards the semi-refined index anyway.
  if (!budget_tripped) {
    TraceSpan compact_span("refine/compact");
    for (VertexId u = 0; u < nq; ++u) {
      CeciVertexData& ud = index->at(u);
      if (u != tree.root()) {
        const VertexId u_p = tree.parent(u);
        stats->pruned_edges += ud.te.Prune(
            [&](VertexId key) { return alive[u_p][key] != 0; },
            [&](VertexId val) { return alive[u][val] != 0; });
      }
      auto nte_ids = tree.nte_in(u);
      for (std::size_t k = 0; k < ud.nte.size(); ++k) {
        const VertexId u_n = tree.non_tree_edges()[nte_ids[k]].parent;
        stats->pruned_edges += ud.nte[k].Prune(
            [&](VertexId key) { return alive[u_n][key] != 0; },
            [&](VertexId val) { return alive[u][val] != 0; });
      }
    }
  }

  const CeciVertexData& rd = index->at(tree.root());
  for (Cardinality c : rd.cardinalities) {
    stats->total_cardinality = SaturatingAdd(stats->total_cardinality, c);
  }
  stats->seconds = timer.Seconds();
}

}  // namespace ceci
