// The Compact Embedding Cluster Index (paper §3.1).
//
// One CeciIndex represents every embedding cluster of a (data graph, query
// graph) pair: per non-root query vertex a TE candidate list keyed by its
// tree parent's candidates and one NTE candidate list per incoming non-tree
// edge; the root holds the cluster pivots. Size is O(|E_q| × |E_g|) (§3.4).
// Built by CeciBuilder, refined by Refiner, consumed by Enumerator.
#ifndef CECI_CECI_CECI_INDEX_H_
#define CECI_CECI_CECI_INDEX_H_

#include <vector>

#include "ceci/candidate_list.h"
#include "ceci/query_tree.h"
#include "graph/types.h"

namespace ceci {

/// Per-query-vertex slice of the index.
struct CeciVertexData {
  /// Alive candidates, sorted. For the root these are the cluster pivots.
  std::vector<VertexId> candidates;
  /// cardinality(u, candidates[i]) as computed by refinement (§3.3);
  /// parallel to `candidates`. Zero before refinement.
  std::vector<Cardinality> cardinalities;
  /// TE candidates keyed by parent's candidates. Empty for the root.
  CandidateList te;
  /// NTE candidates, parallel to QueryTree::nte_in(u).
  std::vector<CandidateList> nte;
};

/// The index. Plain data; lifetime bound to the QueryTree it was built for.
class CeciIndex {
 public:
  CeciIndex() = default;
  explicit CeciIndex(std::size_t num_query_vertices)
      : per_vertex_(num_query_vertices) {}

  CeciVertexData& at(VertexId u) { return per_vertex_[u]; }
  const CeciVertexData& at(VertexId u) const { return per_vertex_[u]; }

  std::size_t num_query_vertices() const { return per_vertex_.size(); }

  /// Cluster pivots (candidates of the root query vertex).
  const std::vector<VertexId>& pivots(const QueryTree& tree) const {
    return per_vertex_[tree.root()].candidates;
  }

  /// cardinality(u, v); zero if v is not an alive candidate of u.
  Cardinality CardinalityOf(VertexId u, VertexId v) const;

  /// Freezes every candidate list into the CSR-flat layout (call after
  /// refinement; enumeration then reads contiguous storage).
  void Freeze();

  /// Total candidate edges stored across all TE and NTE lists.
  std::size_t TotalCandidateEdges() const;

  /// Approximate heap bytes of the index (Table 2 accounting).
  std::size_t MemoryBytes() const;

  /// Actual heap bytes held by the index: every vector's allocation as the
  /// allocator sees it (capacity slack and block rounding included), plus
  /// the per-vertex struct storage itself. Always >= MemoryBytes(); this is
  /// the figure the flat-layout benchmarks compare against.
  std::size_t MeasuredHeapBytes() const;

  /// Measured footprint of one query vertex's slice, split by structure.
  /// MemoryBytes() equals the sum of `te_bytes + nte_bytes +
  /// candidate_bytes` over all vertices; the profiler reports this
  /// breakdown per vertex (Table 2 from measurement, not estimate).
  struct VertexFootprint {
    std::size_t te_keys = 0;
    std::size_t te_edges = 0;
    std::size_t te_bytes = 0;
    std::size_t nte_lists = 0;
    std::size_t nte_edges = 0;
    std::size_t nte_bytes = 0;
    std::size_t candidate_bytes = 0;  // candidates + cardinalities arrays
  };
  VertexFootprint MemoryFootprint(VertexId u) const;

  /// The paper's theoretical bound: |E_q| × |E_g| candidate edges at
  /// 8 bytes each (§6.4).
  static std::size_t TheoreticalBytes(std::size_t query_edges,
                                      std::size_t data_edges) {
    return query_edges * data_edges * 8;
  }

 private:
  std::vector<CeciVertexData> per_vertex_;
};

}  // namespace ceci

#endif  // CECI_CECI_CECI_INDEX_H_
