#include "ceci/cached_matcher.h"

#include <sstream>

#include "ceci/ceci_builder.h"
#include "ceci/preprocess.h"
#include "ceci/refinement.h"
#include "ceci/symmetry.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {
namespace {

Counter& CacheHitCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("ceci.cache.hits");
  return c;
}
Counter& CacheMissCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.cache.misses");
  return c;
}
Gauge& CacheEntriesGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge("ceci.cache.entries");
  return g;
}

}  // namespace

struct CachedMatcher::Entry {
  Preprocessed pre;
  SymmetryConstraints symmetry;
  CeciIndex index;
  MatchStats build_stats;  // phase times & index accounting of the build
};

CachedMatcher::CachedMatcher(const Graph& data) : data_(data), nlc_(data) {}

std::string CachedMatcher::QueryKey(const Graph& query,
                                    const MatchOptions& options) {
  std::ostringstream key;
  key << OrderStrategyName(options.order) << '|'
      << (options.break_automorphisms ? 'S' : 'N') << '|';
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    key << 'v';
    for (Label l : query.labels(u)) key << l << ',';
  }
  key << '|';
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    for (VertexId w : query.neighbors(u)) {
      if (u < w) key << u << '-' << w << ';';
    }
  }
  return key.str();
}

Result<MatchResult> CachedMatcher::Match(const Graph& query,
                                         const MatchOptions& options,
                                         const EmbeddingVisitor* visitor) {
  // Resilient-execution support (serving mode): the budget bounds index
  // construction on a miss and every enumeration worker, exactly like
  // CeciMatcher::Match. Inactive (null) when options.budget is default.
  BudgetTracker tracker(options.budget);
  BudgetTracker* budget = tracker.active() ? &tracker : nullptr;

  const std::string key = QueryKey(query, options);
  std::shared_ptr<const Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      CacheHitCounter().Increment();
      entry = it->second;
    }
  }

  if (entry == nullptr) {
    TraceSpan build_span("cache/build_entry");
    auto fresh = std::make_shared<Entry>();
    MatchStats& stats = fresh->build_stats;
    Timer phase;
    PreprocessOptions pre_options;
    pre_options.order = options.order;
    auto pre = Preprocess(data_, nlc_, query, pre_options);
    if (!pre.ok()) return pre.status();
    fresh->pre = std::move(pre).value();
    fresh->symmetry = options.break_automorphisms
                          ? SymmetryConstraints::Compute(query)
                          : SymmetryConstraints::None(query.num_vertices());
    stats.automorphisms_broken = fresh->symmetry.automorphism_count();
    stats.preprocess_seconds = phase.Seconds();
    stats.theoretical_bytes = CeciIndex::TheoreticalBytes(
        query.num_edges(), data_.num_directed_edges());

    if (!fresh->pre.infeasible) {
      phase.Reset();
      BuildOptions build_options;
      build_options.pool = options.pool;
      build_options.budget = budget;
      CeciBuilder builder(data_, nlc_);
      fresh->index =
          builder.Build(query, fresh->pre.tree, build_options, &stats.build);
      stats.build_seconds = phase.Seconds();
      phase.Reset();
      RefineCeci(fresh->pre.tree, data_.num_vertices(), &fresh->index,
                 &stats.refine, nullptr, budget);
      if (budget == nullptr || !budget->Exhausted()) {
        fresh->index.Freeze();
      }
      stats.refine_seconds = phase.Seconds();
      if (budget != nullptr && budget->Exhausted()) {
        // Partial index: never cached (a later unbudgeted repeat must not
        // inherit an incomplete entry), and never enumerated. Return an
        // honestly-labelled partial result instead.
        MatchResult partial;
        partial.stats = stats;
        partial.termination = tracker.reason();
        partial.stats.budget = tracker.ToStats();
        partial.stats.total_seconds = partial.stats.preprocess_seconds +
                                      partial.stats.build_seconds +
                                      partial.stats.refine_seconds;
        return partial;
      }
      stats.ceci_bytes = fresh->index.MemoryBytes();
      stats.candidate_edges = fresh->index.TotalCandidateEdges();
      stats.embedding_clusters =
          fresh->index.pivots(fresh->pre.tree).size();
      stats.total_cardinality = stats.refine.total_cardinality;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++misses_;
      CacheMissCounter().Increment();
      entry = cache_.emplace(key, fresh).first->second;  // first writer wins
      CacheEntriesGauge().Set(static_cast<std::int64_t>(cache_.size()));
    }
  }

  MatchResult result;
  result.stats = entry->build_stats;
  if (entry->pre.infeasible) return result;

  // A deadline that expired while the query sat in a queue (or during the
  // cache lookup) stops it before enumeration starts.
  if (budget != nullptr && budget->Poll()) {
    result.termination = tracker.reason();
    result.stats.budget = tracker.ToStats();
    return result;
  }

  Timer phase;
  ScheduleOptions schedule;
  schedule.threads = options.threads;
  schedule.distribution = options.distribution;
  schedule.beta = options.beta;
  schedule.limit = options.limit;
  schedule.enumeration.nte_intersection = options.nte_intersection;
  schedule.enumeration.leaf_count_shortcut =
      options.leaf_count_shortcut && visitor == nullptr;
  schedule.enumeration.symmetry = &entry->symmetry;
  schedule.budget = budget;
  schedule.pool = options.pool;
  ScheduleResult sched = [&] {
    TraceSpan span("cache/enumerate");
    return RunParallelEnumeration(data_, entry->pre.tree, entry->index,
                                  schedule, visitor);
  }();
  result.stats.enumerate_seconds = phase.Seconds();
  result.stats.enumeration = sched.stats;
  result.stats.worker_seconds = std::move(sched.worker_seconds);
  result.stats.worker_embeddings = std::move(sched.worker_embeddings);
  result.stats.decomposition = sched.decomposition;
  result.embedding_count = sched.embeddings;

  // Termination resolution, most-specific first (same order as
  // CeciMatcher::Match).
  if (budget != nullptr && budget->Exhausted()) {
    result.termination = tracker.reason();
  } else if (sched.visitor_abort) {
    result.termination = TerminationReason::kCancelled;
  } else if (sched.limit_hit) {
    result.termination = TerminationReason::kLimit;
  }
  result.stats.budget = tracker.ToStats();
  if (sched.visitor_abort) result.stats.budget.cancelled = true;
  result.stats.total_seconds = result.stats.preprocess_seconds +
                               result.stats.build_seconds +
                               result.stats.refine_seconds +
                               result.stats.enumerate_seconds;
  return result;
}

Result<std::uint64_t> CachedMatcher::Count(const Graph& query,
                                           std::size_t threads) {
  MatchOptions options;
  options.threads = threads;
  auto result = Match(query, options);
  if (!result.ok()) return result.status();
  return result->embedding_count;
}

std::size_t CachedMatcher::cache_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void CachedMatcher::ClearCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  CacheEntriesGauge().Set(0);
}

}  // namespace ceci
