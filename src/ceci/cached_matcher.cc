#include "ceci/cached_matcher.h"

#include <algorithm>
#include <sstream>

#include "ceci/ceci_builder.h"
#include "ceci/index_io.h"
#include "ceci/preprocess.h"
#include "ceci/refinement.h"
#include "ceci/symmetry.h"
#include "graphio/pattern_parser.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {
namespace {

Counter& CacheHitCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("ceci.cache.hits");
  return c;
}
Counter& CacheMissCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("ceci.cache.misses");
  return c;
}
Gauge& CacheEntriesGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge("ceci.cache.entries");
  return g;
}

}  // namespace

struct CachedMatcher::Entry {
  Preprocessed pre;
  SymmetryConstraints symmetry;
  // Exactly one layout is populated (use_flat selects). Flat entries drop
  // the pointer form entirely — long-lived serving caches hold only the
  // compact arena (or borrow a read-only mmap for prebuilt images).
  CeciIndex index;
  FlatCeciIndex flat;
  bool use_flat = false;
  MatchStats build_stats;  // phase times & index accounting of the build
};

CachedMatcher::CachedMatcher(const Graph& data) : data_(data), nlc_(data) {}

std::string CachedMatcher::QueryKey(const Graph& query,
                                    const MatchOptions& options) {
  std::ostringstream key;
  key << OrderStrategyName(options.order) << '|'
      << (options.break_automorphisms ? 'S' : 'N')
      << (options.flat_index ? 'F' : 'P') << '|';
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    key << 'v';
    for (Label l : query.labels(u)) key << l << ',';
  }
  key << '|';
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    for (VertexId w : query.neighbors(u)) {
      if (u < w) key << u << '-' << w << ';';
    }
  }
  return key.str();
}

Result<MatchResult> CachedMatcher::Match(const Graph& query,
                                         const MatchOptions& options,
                                         const EmbeddingVisitor* visitor) {
  // Resilient-execution support (serving mode): the budget bounds index
  // construction on a miss and every enumeration worker, exactly like
  // CeciMatcher::Match. Inactive (null) when options.budget is default.
  BudgetTracker tracker(options.budget);
  BudgetTracker* budget = tracker.active() ? &tracker : nullptr;

  const std::string key = QueryKey(query, options);
  std::shared_ptr<const Entry> entry;
  bool cache_hit = false;
  {
    MutexLock lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      CacheHitCounter().Increment();
      entry = it->second;
      cache_hit = true;
    }
  }

  if (entry == nullptr) {
    TraceSpan build_span("cache/build_entry");
    auto fresh = std::make_shared<Entry>();
    MatchStats& stats = fresh->build_stats;
    Timer phase;
    PreprocessOptions pre_options;
    pre_options.order = options.order;
    auto pre = Preprocess(data_, nlc_, query, pre_options);
    if (!pre.ok()) return pre.status();
    fresh->pre = std::move(pre).value();
    fresh->symmetry = options.break_automorphisms
                          ? SymmetryConstraints::Compute(query)
                          : SymmetryConstraints::None(query.num_vertices());
    stats.automorphisms_broken = fresh->symmetry.automorphism_count();
    stats.preprocess_seconds = phase.Seconds();
    stats.theoretical_bytes = CeciIndex::TheoreticalBytes(
        query.num_edges(), data_.num_directed_edges());

    if (!fresh->pre.infeasible) {
      phase.Reset();
      BuildOptions build_options;
      build_options.pool = options.pool;
      build_options.budget = budget;
      CeciBuilder builder(data_, nlc_);
      fresh->index =
          builder.Build(query, fresh->pre.tree, build_options, &stats.build);
      stats.build_seconds = phase.Seconds();
      phase.Reset();
      RefineCeci(fresh->pre.tree, data_.num_vertices(), &fresh->index,
                 &stats.refine, nullptr, budget);
      if (budget == nullptr || !budget->Exhausted()) {
        fresh->index.Freeze();
      }
      stats.refine_seconds = phase.Seconds();
      if (budget != nullptr && budget->Exhausted()) {
        // Partial index: never cached (a later unbudgeted repeat must not
        // inherit an incomplete entry), and never enumerated. Return an
        // honestly-labelled partial result instead.
        MatchResult partial;
        partial.stats = stats;
        partial.termination = tracker.reason();
        partial.stats.budget = tracker.ToStats();
        partial.stats.total_seconds = partial.stats.preprocess_seconds +
                                      partial.stats.build_seconds +
                                      partial.stats.refine_seconds;
        return partial;
      }
      stats.ceci_bytes = fresh->index.MemoryBytes();
      stats.candidate_edges = fresh->index.TotalCandidateEdges();
      stats.embedding_clusters =
          fresh->index.pivots(fresh->pre.tree).size();
      stats.total_cardinality = stats.refine.total_cardinality;
      if (options.flat_index) {
        fresh->flat = FlatCeciIndex::Build(fresh->index, fresh->pre.tree);
        fresh->use_flat = true;
        fresh->index = CeciIndex();  // the cache keeps only the arena
        stats.flat_bytes = fresh->flat.ArenaBytes();
        stats.flat_array_entries = fresh->flat.ArrayEntries();
        stats.flat_bitmap_entries = fresh->flat.BitmapEntries();
      }
    }
    {
      MutexLock lock(mutex_);
      ++misses_;
      CacheMissCounter().Increment();
      entry = cache_.emplace(key, fresh).first->second;  // first writer wins
      CacheEntriesGauge().Set(static_cast<std::int64_t>(cache_.size()));
    }
  }

  MatchResult result;
  result.stats = entry->build_stats;
  result.stats.index_cache_hit = cache_hit;
  if (entry->pre.infeasible) return result;

  // A deadline that expired while the query sat in a queue (or during the
  // cache lookup) stops it before enumeration starts.
  if (budget != nullptr && budget->Poll()) {
    result.termination = tracker.reason();
    result.stats.budget = tracker.ToStats();
    return result;
  }

  Timer phase;
  ScheduleOptions schedule;
  schedule.threads = options.threads;
  schedule.distribution = options.distribution;
  schedule.beta = options.beta;
  schedule.limit = options.limit;
  schedule.enumeration.nte_intersection = options.nte_intersection;
  schedule.enumeration.leaf_count_shortcut =
      options.leaf_count_shortcut && visitor == nullptr;
  schedule.enumeration.symmetry = &entry->symmetry;
  schedule.budget = budget;
  schedule.pool = options.pool;
  ScheduleResult sched = [&] {
    TraceSpan span("cache/enumerate");
    return RunParallelEnumeration(data_, entry->pre.tree,
                                  entry->use_flat ? IndexView(entry->flat)
                                                  : IndexView(entry->index),
                                  schedule, visitor);
  }();
  result.stats.enumerate_seconds = phase.Seconds();
  result.stats.enumeration = sched.stats;
  result.stats.worker_seconds = std::move(sched.worker_seconds);
  result.stats.worker_embeddings = std::move(sched.worker_embeddings);
  result.stats.decomposition = sched.decomposition;
  result.embedding_count = sched.embeddings;

  // Termination resolution, most-specific first (same order as
  // CeciMatcher::Match).
  if (budget != nullptr && budget->Exhausted()) {
    result.termination = tracker.reason();
  } else if (sched.visitor_abort) {
    result.termination = TerminationReason::kCancelled;
  } else if (sched.limit_hit) {
    result.termination = TerminationReason::kLimit;
  }
  result.stats.budget = tracker.ToStats();
  if (sched.visitor_abort) result.stats.budget.cancelled = true;
  result.stats.total_seconds = result.stats.preprocess_seconds +
                               result.stats.build_seconds +
                               result.stats.refine_seconds +
                               result.stats.enumerate_seconds;
  return result;
}

Status CachedMatcher::InstallPrebuilt(const std::string& path,
                                      bool use_mmap) {
  IndexLoadOptions load;
  load.use_mmap = use_mmap;
  auto loaded = OpenFlatIndex(path, load);
  if (!loaded.ok()) return loaded.status();
  if (loaded->pattern.empty()) {
    return Status::InvalidArgument("index image carries no pattern text: " +
                                   path);
  }
  auto query = ParsePattern(loaded->pattern);
  if (!query.ok()) return query.status();

  auto fresh = std::make_shared<Entry>();
  MatchStats& stats = fresh->build_stats;
  auto pre = Preprocess(data_, nlc_, *query, PreprocessOptions{});
  if (!pre.ok()) return pre.status();
  fresh->pre = std::move(pre).value();
  if (fresh->pre.infeasible) {
    return Status::InvalidArgument(
        "prebuilt index pattern is infeasible on this data graph: " + path);
  }
  const auto& order = fresh->pre.tree.matching_order();
  const FlatCeciIndex& flat = loaded->index;
  if (flat.num_query_vertices() != order.size() ||
      !std::equal(order.begin(), order.end(),
                  flat.matching_order().begin())) {
    return Status::InvalidArgument(
        "prebuilt index was built with a different matching order than this "
        "data graph produces: " +
        path);
  }
  if (flat.TotalCandidateEdges() + flat.candidates(order[0]).size() > 0 &&
      flat.MaxCandidateId() >= data_.num_vertices()) {
    return Status::InvalidArgument(
        "prebuilt index references data vertices beyond this graph: " + path);
  }
  fresh->symmetry = SymmetryConstraints::Compute(*query);
  fresh->flat = std::move(loaded->index);
  fresh->use_flat = true;
  stats.automorphisms_broken = fresh->symmetry.automorphism_count();
  stats.theoretical_bytes = CeciIndex::TheoreticalBytes(
      query->num_edges(), data_.num_directed_edges());
  stats.ceci_bytes = fresh->flat.ArenaBytes();
  stats.flat_bytes = fresh->flat.ArenaBytes();
  stats.flat_array_entries = fresh->flat.ArrayEntries();
  stats.flat_bitmap_entries = fresh->flat.BitmapEntries();
  stats.candidate_edges = fresh->flat.TotalCandidateEdges();
  stats.embedding_clusters =
      fresh->flat.candidates(fresh->pre.tree.root()).size();

  const std::string key = QueryKey(*query, MatchOptions{});
  {
    MutexLock lock(mutex_);
    cache_[key] = std::move(fresh);  // prebuilt replaces any prior entry
    CacheEntriesGauge().Set(static_cast<std::int64_t>(cache_.size()));
  }
  return Status::Ok();
}

Result<std::uint64_t> CachedMatcher::Count(const Graph& query,
                                           std::size_t threads) {
  MatchOptions options;
  options.threads = threads;
  auto result = Match(query, options);
  if (!result.ok()) return result.status();
  return result->embedding_count;
}

std::size_t CachedMatcher::cache_entries() const {
  MutexLock lock(mutex_);
  return cache_.size();
}

void CachedMatcher::ClearCache() {
  MutexLock lock(mutex_);
  cache_.clear();
  CacheEntriesGauge().Set(0);
}

}  // namespace ceci
