// BFS query tree with tree edges (TE) and non-tree edges (NTE), paper §2.2.
//
// The tree fixes the shape of the CECI: every non-root query vertex stores
// TE candidates keyed by its tree parent's candidates, and one NTE candidate
// list per incident non-tree edge. The matching order must be a topological
// order of the tree (parent before child); the NTE parent/child roles derive
// from that order (§3.2: "the node appearing earlier in the matching order
// acts as the parent").
#ifndef CECI_CECI_QUERY_TREE_H_
#define CECI_CECI_QUERY_TREE_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace ceci {

/// A query edge not on the BFS tree. `parent` precedes `child` in the
/// matching order.
struct NonTreeEdge {
  VertexId parent;
  VertexId child;
};

/// Immutable BFS tree over a connected query graph.
class QueryTree {
 public:
  /// Empty tree; usable only after assignment from Build().
  QueryTree() = default;

  /// Builds the BFS tree rooted at `root`. The default matching order is
  /// the BFS traversal order. Fails if the query is disconnected.
  static Result<QueryTree> Build(const Graph& query, VertexId root);

  /// Replaces the matching order. `order` must be a permutation of the
  /// query vertices that is a topological order of the tree (every vertex
  /// after its tree parent); NTE orientations are recomputed.
  Status SetMatchingOrder(std::vector<VertexId> order);

  VertexId root() const { return root_; }
  std::size_t num_vertices() const { return parent_.size(); }

  /// BFS traversal order (root first).
  const std::vector<VertexId>& bfs_order() const { return bfs_order_; }

  /// The matching (visit) order used for CECI construction & enumeration.
  const std::vector<VertexId>& matching_order() const {
    return matching_order_;
  }

  /// Position of u in the matching order.
  std::size_t order_position(VertexId u) const { return order_pos_[u]; }

  /// Tree parent of u; kInvalidVertex for the root.
  VertexId parent(VertexId u) const { return parent_[u]; }

  /// Tree children of u.
  std::span<const VertexId> children(VertexId u) const {
    return children_[u];
  }

  /// BFS depth of u (root = 0).
  std::size_t depth(VertexId u) const { return depth_[u]; }

  /// All non-tree edges, oriented by the current matching order.
  const std::vector<NonTreeEdge>& non_tree_edges() const { return ntes_; }

  /// Indices into non_tree_edges() whose child is u.
  std::span<const std::uint32_t> nte_in(VertexId u) const {
    return nte_in_[u];
  }

  /// Indices into non_tree_edges() whose parent is u.
  std::span<const std::uint32_t> nte_out(VertexId u) const {
    return nte_out_[u];
  }

  std::size_t num_tree_edges() const { return num_vertices() - 1; }
  std::size_t num_non_tree_edges() const { return ntes_.size(); }

 private:
  void ReorientNonTreeEdges();

  VertexId root_ = kInvalidVertex;
  std::vector<VertexId> bfs_order_;
  std::vector<VertexId> matching_order_;
  std::vector<std::size_t> order_pos_;
  std::vector<VertexId> parent_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<std::size_t> depth_;
  std::vector<NonTreeEdge> ntes_;
  std::vector<std::vector<std::uint32_t>> nte_in_;
  std::vector<std::vector<std::uint32_t>> nte_out_;
};

}  // namespace ceci

#endif  // CECI_CECI_QUERY_TREE_H_
