#include "ceci/index_io.h"

#include <cstring>
#include <fstream>

namespace ceci {
namespace {

constexpr char kMagic[4] = {'C', 'E', 'I', 'X'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t num_query_vertices;
};

template <typename T>
bool WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool WriteVec(std::ofstream& out, const std::vector<T>& v) {
  std::uint64_t size = v.size();
  if (!WritePod(out, size)) return false;
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* v) {
  std::uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

bool WriteList(std::ofstream& out, const CandidateList& list) {
  std::uint64_t keys = list.num_keys();
  if (!WritePod(out, keys)) return false;
  for (std::size_t i = 0; i < list.num_keys(); ++i) {
    if (!WritePod(out, list.keys()[i])) return false;
    auto vals = list.values_at(i);
    std::vector<VertexId> copy(vals.begin(), vals.end());
    if (!WriteVec(out, copy)) return false;
  }
  return true;
}

bool ReadList(std::ifstream& in, CandidateList* list) {
  std::uint64_t keys = 0;
  if (!ReadPod(in, &keys)) return false;
  for (std::uint64_t i = 0; i < keys; ++i) {
    VertexId key = 0;
    std::vector<VertexId> vals;
    if (!ReadPod(in, &key) || !ReadVec(in, &vals)) return false;
    list->Append(key, std::move(vals));
  }
  return true;
}

}  // namespace

Status WriteCeciIndex(const CeciIndex& index, const QueryTree& tree,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");

  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.num_query_vertices = index.num_query_vertices();
  if (!WritePod(out, h)) return Status::IoError("write failure");
  if (!WriteVec(out, tree.matching_order())) {
    return Status::IoError("write failure");
  }
  for (VertexId u = 0; u < index.num_query_vertices(); ++u) {
    const CeciVertexData& ud = index.at(u);
    if (!WriteVec(out, ud.candidates) || !WriteVec(out, ud.cardinalities)) {
      return Status::IoError("write failure");
    }
    if (!WriteList(out, ud.te)) return Status::IoError("write failure");
    std::uint64_t nte_count = ud.nte.size();
    if (!WritePod(out, nte_count)) return Status::IoError("write failure");
    for (const CandidateList& list : ud.nte) {
      if (!WriteList(out, list)) return Status::IoError("write failure");
    }
  }
  return Status::Ok();
}

Result<CeciIndex> ReadCeciIndex(const QueryTree& tree,
                                const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  Header h{};
  if (!ReadPod(in, &h)) return Status::Corruption("truncated header");
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (h.version != kVersion) {
    return Status::Corruption("unsupported index version");
  }
  if (h.num_query_vertices != tree.num_vertices()) {
    return Status::InvalidArgument(
        "index was built for a different query size");
  }
  std::vector<VertexId> order;
  if (!ReadVec(in, &order)) return Status::Corruption("truncated order");
  if (order != tree.matching_order()) {
    return Status::InvalidArgument(
        "index was built for a different matching order");
  }

  CeciIndex index(tree.num_vertices());
  for (VertexId u = 0; u < tree.num_vertices(); ++u) {
    CeciVertexData& ud = index.at(u);
    if (!ReadVec(in, &ud.candidates) || !ReadVec(in, &ud.cardinalities)) {
      return Status::Corruption("truncated candidates for u" +
                                std::to_string(u));
    }
    if (!ReadList(in, &ud.te)) {
      return Status::Corruption("truncated TE list for u" +
                                std::to_string(u));
    }
    std::uint64_t nte_count = 0;
    if (!ReadPod(in, &nte_count)) return Status::Corruption("truncated NTE");
    ud.nte.resize(nte_count);
    for (std::uint64_t k = 0; k < nte_count; ++k) {
      if (!ReadList(in, &ud.nte[k])) {
        return Status::Corruption("truncated NTE list for u" +
                                  std::to_string(u));
      }
    }
  }
  return index;
}

}  // namespace ceci
