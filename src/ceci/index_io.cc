#include "ceci/index_io.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <vector>

#include "util/bitmap.h"
#include "util/crc32.h"

namespace ceci {
namespace {

constexpr char kMagic[4] = {'C', 'E', 'I', 'X'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kHeaderBytes = 72;
constexpr std::uint32_t kSlabCount = FlatCeciIndex::kNumSlabs;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint32_t header_bytes;
  std::uint32_t slab_count;
  std::uint64_t num_query_vertices;
  std::uint64_t arena_offset;
  std::uint64_t arena_bytes;
  std::uint64_t pattern_offset;
  std::uint64_t pattern_bytes;
  std::uint32_t slab_table_crc;
  std::uint32_t pattern_crc;
  std::uint32_t reserved;
  std::uint32_t header_crc;  // over the preceding 68 bytes
};
// File-format contract: the header and slab records are written and read
// by memcpy, so every field offset below is part of the CEIX format. A
// field that moves (reordering, an alignment change, an accidental
// padding hole) must fail here at compile time, not as a corruption
// report against every previously written index.
static_assert(sizeof(Header) == kHeaderBytes);
static_assert(std::is_standard_layout_v<Header>);
static_assert(std::is_trivially_copyable_v<Header>);
static_assert(offsetof(Header, magic) == 0);
static_assert(offsetof(Header, version) == 4);
static_assert(offsetof(Header, header_bytes) == 8);
static_assert(offsetof(Header, slab_count) == 12);
static_assert(offsetof(Header, num_query_vertices) == 16);
static_assert(offsetof(Header, arena_offset) == 24);
static_assert(offsetof(Header, arena_bytes) == 32);
static_assert(offsetof(Header, pattern_offset) == 40);
static_assert(offsetof(Header, pattern_bytes) == 48);
static_assert(offsetof(Header, slab_table_crc) == 56);
static_assert(offsetof(Header, pattern_crc) == 60);
static_assert(offsetof(Header, reserved) == 64);
static_assert(offsetof(Header, header_crc) == 68,
              "header_crc must be the final word: it covers [0, 68)");

struct SlabRecord {
  std::uint64_t offset;  // into the arena
  std::uint64_t bytes;
  std::uint32_t kind;  // SlabKind, canonical order
  std::uint32_t crc;
};
static_assert(sizeof(SlabRecord) == 24);
static_assert(std::is_standard_layout_v<SlabRecord>);
static_assert(std::is_trivially_copyable_v<SlabRecord>);
static_assert(offsetof(SlabRecord, offset) == 0);
static_assert(offsetof(SlabRecord, bytes) == 8);
static_assert(offsetof(SlabRecord, kind) == 16);
static_assert(offsetof(SlabRecord, crc) == 20);

constexpr std::uint64_t kArenaOffset =
    kHeaderBytes + kSlabCount * sizeof(SlabRecord);
static_assert(kArenaOffset == 288 && kArenaOffset % 8 == 0);

}  // namespace

Status WriteFlatIndex(const FlatCeciIndex& flat, const std::string& pattern,
                      const std::string& path) {
  const std::span<const std::byte> arena = flat.arena();

  SlabRecord table[kSlabCount];
  for (std::uint32_t s = 0; s < kSlabCount; ++s) {
    const FlatCeciIndex::Slab& slab =
        flat.slab(static_cast<FlatCeciIndex::SlabKind>(s));
    table[s].offset = slab.offset;
    table[s].bytes = slab.bytes;
    table[s].kind = s;
    table[s].crc = Crc32(arena.data() + slab.offset, slab.bytes);
  }

  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.header_bytes = kHeaderBytes;
  h.slab_count = kSlabCount;
  h.num_query_vertices = flat.num_query_vertices();
  h.arena_offset = kArenaOffset;
  h.arena_bytes = arena.size();
  h.pattern_offset = kArenaOffset + arena.size();
  h.pattern_bytes = pattern.size();
  h.slab_table_crc = Crc32(table, sizeof(table));
  h.pattern_crc = Crc32(pattern.data(), pattern.size());
  h.header_crc = Crc32(&h, kHeaderBytes - sizeof(std::uint32_t));

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(table), sizeof(table));
  out.write(reinterpret_cast<const char*>(arena.data()),
            static_cast<std::streamsize>(arena.size()));
  out.write(pattern.data(), static_cast<std::streamsize>(pattern.size()));
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

Result<LoadedFlatIndex> OpenFlatIndex(const std::string& path,
                                      const IndexLoadOptions& options) {
  // Both load modes validate against the same raw byte view; only the
  // arena hand-off at the end differs (copy vs borrow the mapping).
  MappedFile mapped;
  std::vector<char> buffer;
  const std::byte* data = nullptr;
  std::size_t size = 0;
  if (options.use_mmap) {
    Result<MappedFile> m = MappedFile::Open(path);
    if (!m.ok()) return m.status();
    mapped = std::move(m).value();
    data = mapped.data();
    size = mapped.size();
  } else {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::IoError("cannot open " + path);
    size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    buffer.resize(size);
    in.read(buffer.data(), static_cast<std::streamsize>(size));
    if (!in) return Status::IoError("read failure on " + path);
    data = reinterpret_cast<const std::byte*>(buffer.data());
  }

  if (size < sizeof(Header)) return Status::Corruption("truncated header");
  Header h{};
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (h.version != kVersion) {
    return Status::Corruption("unsupported index version");
  }
  if (h.header_bytes != kHeaderBytes || h.slab_count != kSlabCount) {
    return Status::Corruption("unexpected header geometry");
  }
  if (options.verify_checksums &&
      Crc32(&h, kHeaderBytes - sizeof(std::uint32_t)) != h.header_crc) {
    return Status::Corruption("header checksum mismatch");
  }
  if (h.arena_offset != kArenaOffset) {
    return Status::Corruption("unexpected arena offset");
  }
  if (size < kArenaOffset) return Status::Corruption("truncated slab table");
  SlabRecord table[kSlabCount];
  std::memcpy(table, data + kHeaderBytes, sizeof(table));
  if (options.verify_checksums &&
      Crc32(table, sizeof(table)) != h.slab_table_crc) {
    return Status::Corruption("slab table checksum mismatch");
  }
  if (h.arena_bytes > size - kArenaOffset) {
    return Status::Corruption("truncated arena");
  }
  if (h.pattern_offset != kArenaOffset + h.arena_bytes ||
      h.pattern_bytes > size - h.pattern_offset) {
    return Status::Corruption("truncated pattern");
  }

  const std::byte* arena = data + kArenaOffset;
  FlatCeciIndex::Slab slabs[kSlabCount];
  for (std::uint32_t s = 0; s < kSlabCount; ++s) {
    if (table[s].kind != s) {
      return Status::Corruption("slab table kinds out of order");
    }
    if (table[s].offset > h.arena_bytes ||
        table[s].bytes > h.arena_bytes - table[s].offset) {
      return Status::Corruption("slab " + std::to_string(s) +
                                " exceeds the arena");
    }
    if (options.verify_checksums &&
        Crc32(arena + table[s].offset, table[s].bytes) != table[s].crc) {
      return Status::Corruption("slab checksum mismatch (slab " +
                                std::to_string(s) + ")");
    }
    slabs[s].offset = table[s].offset;
    slabs[s].bytes = table[s].bytes;
  }

  LoadedFlatIndex loaded;
  loaded.pattern.assign(
      reinterpret_cast<const char*>(data + h.pattern_offset),
      static_cast<std::size_t>(h.pattern_bytes));
  if (options.verify_checksums &&
      Crc32(loaded.pattern.data(), loaded.pattern.size()) != h.pattern_crc) {
    return Status::Corruption("pattern checksum mismatch");
  }

  Result<FlatCeciIndex> flat = [&]() -> Result<FlatCeciIndex> {
    if (options.use_mmap) {
      return FlatCeciIndex::FromArena(
          {}, std::move(mapped), kArenaOffset,
          static_cast<std::size_t>(h.arena_bytes), slabs,
          static_cast<std::size_t>(h.num_query_vertices));
    }
    std::vector<std::uint64_t> owned((h.arena_bytes + 7) / 8, 0);
    std::memcpy(owned.data(), arena, h.arena_bytes);
    return FlatCeciIndex::FromArena(
        std::move(owned), {}, 0, static_cast<std::size_t>(h.arena_bytes),
        slabs, static_cast<std::size_t>(h.num_query_vertices));
  }();
  if (!flat.ok()) return flat.status();
  loaded.index = std::move(flat).value();
  return loaded;
}

Result<FlatCeciIndex> ReadFlatIndex(const QueryTree& tree,
                                    const std::string& path,
                                    const IndexLoadOptions& options) {
  Result<LoadedFlatIndex> loaded = OpenFlatIndex(path, options);
  if (!loaded.ok()) return loaded.status();
  FlatCeciIndex flat = std::move(loaded->index);
  if (flat.num_query_vertices() != tree.num_vertices()) {
    return Status::InvalidArgument(
        "index was built for a different query size");
  }
  const std::span<const VertexId> order = flat.matching_order();
  if (!std::equal(order.begin(), order.end(),
                  tree.matching_order().begin())) {
    return Status::InvalidArgument(
        "index was built for a different matching order");
  }
  return flat;
}

CeciIndex InflateFlatIndex(const FlatCeciIndex& flat) {
  const std::size_t nq = flat.num_query_vertices();
  CeciIndex index(nq);
  std::vector<std::uint32_t> rank_scratch;
  for (VertexId u = 0; u < nq; ++u) {
    CeciVertexData& ud = index.at(u);
    const std::span<const VertexId> cand = flat.candidates(u);
    const std::span<const Cardinality> card = flat.cardinalities(u);
    ud.candidates.assign(cand.begin(), cand.end());
    ud.cardinalities.assign(card.begin(), card.end());
    ud.nte.resize(flat.nte_count(u));
  }
  flat.ForEachList([&](VertexId owner, std::int32_t nte_slot, VertexId key,
                       const FlatCeciIndex::EntryRef& ref) {
    const std::span<const VertexId> cand = flat.candidates(owner);
    std::vector<VertexId> values;
    values.reserve(ref.count);
    if (ref.is_bitmap()) {
      rank_scratch.clear();
      BitmapExtract(ref.bits, &rank_scratch);
      for (std::uint32_t r : rank_scratch) values.push_back(cand[r]);
    } else {
      for (std::uint32_t r : ref.ranks) values.push_back(cand[r]);
    }
    CeciVertexData& ud = index.at(owner);
    if (nte_slot < 0) {
      ud.te.Append(key, std::move(values));
    } else {
      ud.nte[static_cast<std::size_t>(nte_slot)].Append(key,
                                                        std::move(values));
    }
  });
  return index;
}

Status WriteCeciIndex(const CeciIndex& index, const QueryTree& tree,
                      const std::string& path) {
  const FlatCeciIndex flat = FlatCeciIndex::Build(index, tree);
  return WriteFlatIndex(flat, "", path);
}

Result<CeciIndex> ReadCeciIndex(const QueryTree& tree,
                                const std::string& path) {
  Result<FlatCeciIndex> flat = ReadFlatIndex(tree, path);
  if (!flat.ok()) return flat.status();
  return InflateFlatIndex(*flat);
}

}  // namespace ceci
