#include "ceci/profiler.h"

#include <algorithm>
#include <cstdio>

#include "ceci/stats.h"
#include "util/json_writer.h"

namespace ceci {
namespace {

std::string FmtCount(std::uint64_t v) {
  char buf[32];
  if (v >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) * 1e-6);
  } else if (v >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(v) * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  }
  return buf;
}

std::string FmtBytes(std::size_t bytes) {
  char buf[32];
  if (bytes < (std::size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  } else if (bytes < (std::size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  }
  return buf;
}

std::string FmtSeconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

void AppendSkewJson(const SkewSummary& s, JsonWriter* w) {
  w->BeginObject();
  w->KV("count", static_cast<std::uint64_t>(s.count));
  w->KV("total", static_cast<std::uint64_t>(s.total));
  w->KV("max", static_cast<std::uint64_t>(s.max));
  w->KV("mean", s.mean);
  w->KV("max_over_mean", s.max_over_mean);
  w->KV("gini", s.gini);
  w->EndObject();
}

}  // namespace

SkewSummary SkewSummary::Of(std::span<const Cardinality> values) {
  SkewSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  for (Cardinality v : values) {
    s.total = SaturatingAdd(s.total, v);
    s.max = std::max(s.max, v);
  }
  s.mean = static_cast<double>(s.total) / static_cast<double>(s.count);
  s.max_over_mean =
      s.mean > 0.0 ? static_cast<double>(s.max) / s.mean : 0.0;
  if (s.total > 0 && s.count > 1) {
    // Gini over the sorted distribution: G = 2·Σ i·x_i / (n·Σx) − (n+1)/n
    // with 1-based ranks over ascending values.
    std::vector<Cardinality> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    }
    const double n = static_cast<double>(s.count);
    s.gini = 2.0 * weighted / (n * static_cast<double>(s.total)) -
             (n + 1.0) / n;
    s.gini = std::clamp(s.gini, 0.0, 1.0);
  }
  return s;
}

double QueryProfile::Occupancy() const {
  if (workers.empty() || enumerate_wall_seconds <= 0.0) return 0.0;
  double busy = 0.0;
  for (const WorkerProfile& w : workers) busy += w.busy_seconds;
  const double capacity =
      enumerate_wall_seconds * static_cast<double>(workers.size());
  return capacity > 0.0 ? std::min(busy / capacity, 1.0) : 0.0;
}

void AppendQueryProfileJson(const QueryProfile& p, JsonWriter* w) {
  w->BeginObject();

  w->Key("vertices");
  w->BeginArray();
  for (const VertexProfile& v : p.vertices) {
    w->BeginObject();
    w->KV("u", static_cast<std::uint64_t>(v.u));
    w->KV("position", static_cast<std::uint64_t>(v.order_position));
    w->KV("candidates_filtered",
          static_cast<std::uint64_t>(v.candidates_filtered));
    w->KV("candidates_built", static_cast<std::uint64_t>(v.candidates_built));
    w->KV("candidates_refined",
          static_cast<std::uint64_t>(v.candidates_refined));
    w->KV("rejected_label", v.rejected_label);
    w->KV("rejected_degree", v.rejected_degree);
    w->KV("rejected_nlc", v.rejected_nlc);
    w->KV("refine_pruned", v.refine_pruned);
    w->KV("refine_survival", v.RefineSurvival());
    w->KV("te_keys", static_cast<std::uint64_t>(v.te_keys));
    w->KV("te_edges", static_cast<std::uint64_t>(v.te_edges));
    w->KV("te_bytes", static_cast<std::uint64_t>(v.te_bytes));
    w->KV("nte_lists", static_cast<std::uint64_t>(v.nte_lists));
    w->KV("nte_edges", static_cast<std::uint64_t>(v.nte_edges));
    w->KV("nte_bytes", static_cast<std::uint64_t>(v.nte_bytes));
    w->KV("candidate_bytes", static_cast<std::uint64_t>(v.candidate_bytes));
    w->KV("recursive_calls", v.recursive_calls);
    w->EndObject();
  }
  w->EndArray();

  w->Key("index");
  w->BeginObject();
  w->KV("bytes", static_cast<std::uint64_t>(p.index_bytes));
  w->KV("te_bytes", static_cast<std::uint64_t>(p.te_bytes));
  w->KV("nte_bytes", static_cast<std::uint64_t>(p.nte_bytes));
  w->KV("candidate_bytes", static_cast<std::uint64_t>(p.candidate_bytes));
  w->EndObject();

  w->Key("clusters");
  AppendSkewJson(p.clusters, w);
  w->Key("work_units");
  AppendSkewJson(p.work_units, w);

  w->Key("workers");
  w->BeginObject();
  w->KV("count", static_cast<std::uint64_t>(p.workers.size()));
  w->KV("wall_seconds", p.enumerate_wall_seconds);
  w->KV("occupancy", p.Occupancy());
  w->Key("per_worker");
  w->BeginArray();
  for (const WorkerProfile& wp : p.workers) {
    w->BeginObject();
    w->KV("worker", static_cast<std::uint64_t>(wp.worker));
    w->KV("busy_seconds", wp.busy_seconds);
    w->KV("units", wp.units);
    w->KV("occupancy",
          p.enumerate_wall_seconds > 0.0
              ? std::min(wp.busy_seconds / p.enumerate_wall_seconds, 1.0)
              : 0.0);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();

  w->EndObject();
}

std::string FormatExplain(const QueryProfile& p, const MatchStats& stats) {
  std::string out;
  char line[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };

  out += "EXPLAIN  (per query vertex, matching order)\n";
  out +=
      " pos  u     filtered    built  refined  keep%      LF      DF    NLCF"
      "  te_edges  nte_edges     bytes     calls\n";
  for (const VertexProfile& v : p.vertices) {
    const std::size_t vertex_bytes =
        v.te_bytes + v.nte_bytes + v.candidate_bytes;
    emit(" %3zu  u%-3u %9s %8s %8s %5.1f%% %7s %7s %7s %9s %10s %9s %9s\n",
         v.order_position, v.u, FmtCount(v.candidates_filtered).c_str(),
         FmtCount(v.candidates_built).c_str(),
         FmtCount(v.candidates_refined).c_str(), v.RefineSurvival() * 100.0,
         FmtCount(v.rejected_label).c_str(),
         FmtCount(v.rejected_degree).c_str(),
         FmtCount(v.rejected_nlc).c_str(), FmtCount(v.te_edges).c_str(),
         FmtCount(v.nte_edges).c_str(), FmtBytes(vertex_bytes).c_str(),
         FmtCount(v.recursive_calls).c_str());
  }

  emit("index: %s measured (TE %s, NTE %s, candidates %s); theoretical "
       "bound %s\n",
       FmtBytes(p.index_bytes).c_str(), FmtBytes(p.te_bytes).c_str(),
       FmtBytes(p.nte_bytes).c_str(), FmtBytes(p.candidate_bytes).c_str(),
       FmtBytes(stats.theoretical_bytes).c_str());
  if (stats.theoretical_bytes > 0) {
    emit("       %.1f%% of the theoretical |E_q|x2|E_g| bound\n",
         100.0 * static_cast<double>(p.index_bytes) /
             static_cast<double>(stats.theoretical_bytes));
  }

  emit("clusters: %zu, cardinality total %llu, max %llu "
       "(max/mean %.2f, gini %.3f)\n",
       p.clusters.count,
       static_cast<unsigned long long>(p.clusters.total),
       static_cast<unsigned long long>(p.clusters.max),
       p.clusters.max_over_mean, p.clusters.gini);
  emit("work units: %zu after decomposition (%zu extreme clusters split, "
       "threshold %llu), max/mean %.2f, gini %.3f\n",
       p.work_units.count, stats.decomposition.extreme_clusters,
       static_cast<unsigned long long>(stats.decomposition.threshold),
       p.work_units.max_over_mean, p.work_units.gini);

  emit("workers: %zu, occupancy %.1f%% over %s enumeration wall\n",
       p.workers.size(), p.Occupancy() * 100.0,
       FmtSeconds(p.enumerate_wall_seconds).c_str());
  for (const WorkerProfile& wp : p.workers) {
    const double occ = p.enumerate_wall_seconds > 0.0
                           ? std::min(wp.busy_seconds /
                                          p.enumerate_wall_seconds, 1.0)
                           : 0.0;
    emit("  worker%zu: busy %s (%.1f%%), %llu units\n", wp.worker,
         FmtSeconds(wp.busy_seconds).c_str(), occ * 100.0,
         static_cast<unsigned long long>(wp.units));
  }
  if (stats.budget.active) {
    emit("budget: %llu polls, %s charged",
         static_cast<unsigned long long>(stats.budget.polls),
         FmtBytes(stats.budget.charged_bytes).c_str());
    if (stats.budget.memory_budget_bytes > 0) {
      emit(" of %s cap", FmtBytes(stats.budget.memory_budget_bytes).c_str());
    }
    if (stats.budget.deadline_seconds > 0.0) {
      emit(", deadline %s", FmtSeconds(stats.budget.deadline_seconds).c_str());
    }
    out += "\n";
  }
  return out;
}

}  // namespace ceci
