#include "ceci/matcher.h"

#include <memory>

#include "ceci/ceci_builder.h"
#include "ceci/preprocess.h"
#include "ceci/refinement.h"
#include "ceci/symmetry.h"
#include "util/timer.h"

namespace ceci {

CeciMatcher::CeciMatcher(const Graph& data) : data_(data), nlc_(data) {}

Result<MatchResult> CeciMatcher::Match(const Graph& query,
                                       const MatchOptions& options,
                                       const EmbeddingVisitor* visitor) const {
  Timer total_timer;
  MatchResult result;
  MatchStats& stats = result.stats;

  // --- Preprocessing (§2.2) ---
  Timer phase;
  PreprocessOptions pre_options;
  pre_options.order = options.order;
  auto pre = Preprocess(data_, nlc_, query, pre_options);
  if (!pre.ok()) return pre.status();
  SymmetryConstraints symmetry =
      options.break_automorphisms ? SymmetryConstraints::Compute(query)
                                  : SymmetryConstraints::None(
                                        query.num_vertices());
  stats.automorphisms_broken = symmetry.automorphism_count();
  stats.preprocess_seconds = phase.Seconds();

  // Directed adjacency entries: every undirected data edge can serve a
  // query edge in either orientation, so the §3.4 bound counts 2|E_g|
  // candidate entries per query edge.
  stats.theoretical_bytes = CeciIndex::TheoreticalBytes(
      query.num_edges(), data_.num_directed_edges());

  if (pre->infeasible) {
    // Some query vertex has no candidates at all: zero embeddings.
    stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // --- CECI creation + BFS filtering (§3.2) ---
  phase.Reset();
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  if (options.threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.threads);
    pool = owned_pool.get();
  }
  BuildOptions build_options;
  build_options.pool = pool;
  CeciBuilder builder(data_, nlc_);
  CeciIndex index =
      builder.Build(query, pre->tree, build_options, &stats.build);
  stats.build_seconds = phase.Seconds();
  stats.ceci_bytes_unrefined = index.MemoryBytes();
  stats.candidate_edges_unrefined = index.TotalCandidateEdges();

  // --- Reverse-BFS refinement (§3.3) ---
  phase.Reset();
  RefineCeci(pre->tree, data_.num_vertices(), &index, &stats.refine);
  index.Freeze();  // CSR-flat lists for the enumeration hot path
  stats.refine_seconds = phase.Seconds();
  stats.ceci_bytes = index.MemoryBytes();
  stats.candidate_edges = index.TotalCandidateEdges();
  stats.embedding_clusters = index.pivots(pre->tree).size();
  stats.total_cardinality = stats.refine.total_cardinality;

  // --- Parallel enumeration (§4) ---
  phase.Reset();
  ScheduleOptions schedule;
  schedule.threads = options.threads;
  schedule.distribution = options.distribution;
  schedule.beta = options.beta;
  schedule.limit = options.limit;
  schedule.enumeration.nte_intersection = options.nte_intersection;
  schedule.enumeration.leaf_count_shortcut =
      options.leaf_count_shortcut && visitor == nullptr;
  schedule.enumeration.symmetry = &symmetry;
  ScheduleResult sched =
      RunParallelEnumeration(data_, pre->tree, index, schedule, visitor);
  stats.enumerate_seconds = phase.Seconds();
  stats.enumeration = sched.stats;
  stats.worker_seconds = std::move(sched.worker_seconds);
  stats.decomposition = sched.decomposition;

  result.embedding_count = sched.embeddings;
  stats.total_seconds = total_timer.Seconds();
  return result;
}

Result<std::uint64_t> CeciMatcher::Count(const Graph& query,
                                         std::size_t threads) const {
  MatchOptions options;
  options.threads = threads;
  auto result = Match(query, options);
  if (!result.ok()) return result.status();
  return result->embedding_count;
}

}  // namespace ceci
