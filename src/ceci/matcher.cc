#include "ceci/matcher.h"

#include <memory>

#include "ceci/ceci_builder.h"
#include "ceci/preprocess.h"
#include "ceci/refinement.h"
#include "ceci/symmetry.h"
#include "util/intersection.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ceci {
namespace {

// Mirrors one query's statistics into the process-cumulative registry.
// Done once per Match() from accumulated locals so the per-candidate hot
// paths never touch shared metric cells.
void ExportMatchMetrics(const MatchResult& result) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter& queries = reg.GetCounter("ceci.match.queries");
  static Counter& embeddings = reg.GetCounter("ceci.match.embeddings");
  static Counter& rejected_label = reg.GetCounter("ceci.build.rejected_label");
  static Counter& rejected_degree =
      reg.GetCounter("ceci.build.rejected_degree");
  static Counter& rejected_nlc = reg.GetCounter("ceci.build.rejected_nlc");
  static Counter& cascade_removals =
      reg.GetCounter("ceci.build.cascade_removals");
  static Counter& nte_cascade_removals =
      reg.GetCounter("ceci.build.nte_cascade_removals");
  static Counter& frontier_expansions =
      reg.GetCounter("ceci.build.frontier_expansions");
  static Counter& neighbors_scanned =
      reg.GetCounter("ceci.build.neighbors_scanned");
  static Counter& pruned_candidates =
      reg.GetCounter("ceci.refine.pruned_candidates");
  static Counter& pruned_edges = reg.GetCounter("ceci.refine.pruned_edges");
  static Counter& recursive_calls =
      reg.GetCounter("ceci.enumerate.recursive_calls");
  static Counter& intersections =
      reg.GetCounter("ceci.enumerate.intersections");
  static Counter& elements_in =
      reg.GetCounter("ceci.enumerate.intersection_elements_in");
  static Counter& elements_out =
      reg.GetCounter("ceci.enumerate.intersection_elements_out");
  static Counter& edge_verifications =
      reg.GetCounter("ceci.enumerate.edge_verifications");
  static Counter& extreme_clusters =
      reg.GetCounter("ceci.cluster.extreme_clusters");
  static Counter& work_units = reg.GetCounter("ceci.cluster.work_units");
  static Histogram& query_us = reg.GetHistogram("ceci.match.query_us");
  static Histogram& worker_busy_us =
      reg.GetHistogram("ceci.enumerate.worker_busy_us");
  static Counter& budget_deadline =
      reg.GetCounter("ceci.budget.deadline_exceeded");
  static Counter& budget_memory =
      reg.GetCounter("ceci.budget.memory_exceeded");
  static Counter& budget_cancelled = reg.GetCounter("ceci.budget.cancelled");
  static Counter& budget_polls = reg.GetCounter("ceci.budget.polls");

  // The intersection kernels batch their own counters thread-locally;
  // worker threads flushed at exit, this covers the calling thread.
  FlushIntersectionThreadStats();

  const MatchStats& s = result.stats;
  queries.Increment();
  embeddings.Add(result.embedding_count);
  rejected_label.Add(s.build.rejected_label);
  rejected_degree.Add(s.build.rejected_degree);
  rejected_nlc.Add(s.build.rejected_nlc);
  cascade_removals.Add(s.build.cascade_removals);
  nte_cascade_removals.Add(s.build.nte_cascade_removals);
  frontier_expansions.Add(s.build.frontier_expansions);
  neighbors_scanned.Add(s.build.neighbors_scanned);
  pruned_candidates.Add(s.refine.pruned_candidates);
  pruned_edges.Add(s.refine.pruned_edges);
  recursive_calls.Add(s.enumeration.recursive_calls);
  intersections.Add(s.enumeration.intersections);
  elements_in.Add(s.enumeration.intersection_elements_in);
  elements_out.Add(s.enumeration.intersection_elements_out);
  edge_verifications.Add(s.enumeration.edge_verifications);
  extreme_clusters.Add(s.decomposition.extreme_clusters);
  work_units.Add(s.decomposition.work_units);
  query_us.Record(static_cast<std::uint64_t>(s.total_seconds * 1e6));
  for (double w : s.worker_seconds) {
    worker_busy_us.Record(static_cast<std::uint64_t>(w * 1e6));
  }
  if (s.budget.deadline_exceeded) budget_deadline.Increment();
  if (s.budget.memory_exceeded) budget_memory.Increment();
  if (s.budget.cancelled) budget_cancelled.Increment();
  budget_polls.Add(s.budget.polls);
}

}  // namespace

CeciMatcher::CeciMatcher(const Graph& data) : data_(data), nlc_(data) {}

Result<MatchResult> CeciMatcher::Match(const Graph& query,
                                       const MatchOptions& options,
                                       const EmbeddingVisitor* visitor) const {
  Timer total_timer;
  TraceSpan match_span("match");
  MatchResult result;
  MatchStats& stats = result.stats;

  // Resilient execution layer: one tracker per call, shared by every
  // phase and worker. Inactive (null below) when options.budget is
  // default — the pipeline then pays nothing.
  BudgetTracker tracker(options.budget);
  BudgetTracker* budget = tracker.active() ? &tracker : nullptr;
  bool visitor_abort = false;
  // Stamps the outcome on the result; every exit path funnels through
  // here so partial results are always labelled.
  auto finalize = [&](TerminationReason reason) {
    result.termination = reason;
    stats.budget = tracker.ToStats();
    if (visitor_abort) stats.budget.cancelled = true;
    stats.total_seconds = total_timer.Seconds();
    ExportMatchMetrics(result);
  };

  // --- Preprocessing (§2.2) ---
  Timer phase;
  PreprocessOptions pre_options;
  pre_options.order = options.order;
  auto pre = [&] {
    TraceSpan span("preprocess");
    return Preprocess(data_, nlc_, query, pre_options);
  }();
  if (!pre.ok()) return pre.status();
  SymmetryConstraints symmetry =
      options.break_automorphisms ? SymmetryConstraints::Compute(query)
                                  : SymmetryConstraints::None(
                                        query.num_vertices());
  stats.automorphisms_broken = symmetry.automorphism_count();
  stats.preprocess_seconds = phase.Seconds();

  // Initial poll: an already-cancelled token or pre-expired deadline
  // stops the query before any index work starts.
  if (budget != nullptr && budget->Poll()) {
    finalize(tracker.reason());
    return result;
  }

  // Directed adjacency entries: every undirected data edge can serve a
  // query edge in either orientation, so the §3.4 bound counts 2|E_g|
  // candidate entries per query edge.
  stats.theoretical_bytes = CeciIndex::TheoreticalBytes(
      query.num_edges(), data_.num_directed_edges());

  if (pre->infeasible) {
    // Some query vertex has no candidates at all: zero embeddings. This
    // is a *complete* answer, so the termination reason stays kCompleted.
    static Counter& infeasible =
        MetricsRegistry::Global().GetCounter("ceci.match.infeasible");
    infeasible.Increment();
    // Empty-but-present profile: no index exists to walk.
    if (options.profile) result.profile.emplace();
    finalize(TerminationReason::kCompleted);
    return result;
  }

  // --- CECI creation + BFS filtering (§3.2) ---
  phase.Reset();
  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.threads);
    pool = owned_pool.get();
  }
  BuildOptions build_options;
  build_options.pool = pool;
  build_options.budget = budget;
  std::vector<BuildVertexStats> vertex_stats;
  if (options.profile) build_options.vertex_stats = &vertex_stats;
  CeciBuilder builder(data_, nlc_);
  CeciIndex index = [&] {
    TraceSpan span("build");
    return builder.Build(query, pre->tree, build_options, &stats.build);
  }();
  stats.build_seconds = phase.Seconds();
  stats.ceci_bytes_unrefined = index.MemoryBytes();
  stats.candidate_edges_unrefined = index.TotalCandidateEdges();
  if (budget != nullptr && budget->Exhausted()) {
    // Partial index: skip the inspector (its invariants assume a complete
    // build) and everything downstream.
    finalize(tracker.reason());
    return result;
  }
  if (options.index_inspector) {
    options.index_inspector(pre->tree, index, /*refined=*/false);
  }

  // Candidate-set sizes after build (post-cascade, pre-refinement); a
  // read-only walk taken only under profiling.
  std::vector<std::size_t> built_sizes;
  if (options.profile) {
    built_sizes.resize(query.num_vertices());
    for (VertexId u = 0; u < query.num_vertices(); ++u) {
      built_sizes[u] = index.at(u).candidates.size();
    }
  }

  // --- Reverse-BFS refinement (§3.3) ---
  phase.Reset();
  std::vector<std::uint64_t> pruned_per_vertex;
  {
    TraceSpan span("refine");
    RefineCeci(pre->tree, data_.num_vertices(), &index, &stats.refine,
               options.profile ? &pruned_per_vertex : nullptr, budget);
    if (budget == nullptr || !budget->Exhausted()) {
      index.Freeze();  // CSR-flat lists for the enumeration hot path
    }
  }
  stats.refine_seconds = phase.Seconds();
  if (budget != nullptr && budget->Exhausted()) {
    // Semi-refined index: cardinalities are incomplete, so neither the
    // inspector nor the enumerator may consume it.
    finalize(tracker.reason());
    return result;
  }
  if (options.index_inspector) {
    options.index_inspector(pre->tree, index, /*refined=*/true);
  }
  stats.ceci_bytes = index.MemoryBytes();
  stats.candidate_edges = index.TotalCandidateEdges();
  stats.embedding_clusters = index.pivots(pre->tree).size();
  stats.total_cardinality = stats.refine.total_cardinality;

  // --- Freeze to the flat arena layout (the enumeration hot path) ---
  FlatCeciIndex flat;
  if (options.flat_index) {
    TraceSpan span("freeze_flat");
    flat = FlatCeciIndex::Build(index, pre->tree);
    stats.flat_bytes = flat.ArenaBytes();
    stats.flat_array_entries = flat.ArrayEntries();
    stats.flat_bitmap_entries = flat.BitmapEntries();
    if (budget != nullptr) {
      budget->ChargeBytes(flat.ArenaBytes());
      if (budget->Poll()) {
        finalize(tracker.reason());
        return result;
      }
    }
    if (options.flat_inspector) options.flat_inspector(pre->tree, flat);
  }

  // --- Parallel enumeration (§4) ---
  phase.Reset();
  ScheduleOptions schedule;
  schedule.threads = options.threads;
  schedule.distribution = options.distribution;
  schedule.beta = options.beta;
  schedule.limit = options.limit;
  schedule.enumeration.nte_intersection = options.nte_intersection;
  schedule.enumeration.leaf_count_shortcut =
      options.leaf_count_shortcut && visitor == nullptr;
  schedule.enumeration.symmetry = &symmetry;
  schedule.enumeration.per_position_stats = options.profile;
  schedule.collect_profile = options.profile;
  schedule.budget = budget;
  // Only an external (shared) pool is routed to the scheduler: the
  // per-query owned pool keeps the original dedicated-thread path so
  // single-query behaviour and its worker accounting stay unchanged.
  schedule.pool = options.pool;
  ScheduleResult sched = [&] {
    TraceSpan span("enumerate");
    return RunParallelEnumeration(data_, pre->tree,
                                  options.flat_index ? IndexView(flat)
                                                     : IndexView(index),
                                  schedule, visitor);
  }();
  stats.enumerate_seconds = phase.Seconds();
  stats.enumeration = sched.stats;
  stats.worker_seconds = std::move(sched.worker_seconds);
  stats.worker_embeddings = std::move(sched.worker_embeddings);
  stats.decomposition = sched.decomposition;
  visitor_abort = sched.visitor_abort;

  result.embedding_count = sched.embeddings;

  // Termination resolution, most-specific first: a tripped budget names
  // its cap; a visitor that returned false is an external cancellation;
  // reaching the emission limit is the paper's first-k mode.
  TerminationReason reason = TerminationReason::kCompleted;
  if (budget != nullptr && budget->Exhausted()) {
    reason = tracker.reason();
  } else if (sched.visitor_abort) {
    reason = TerminationReason::kCancelled;
  } else if (sched.limit_hit) {
    reason = TerminationReason::kLimit;
  }

  if (options.profile) {
    QueryProfile& profile = result.profile.emplace();
    const auto& order = pre->tree.matching_order();
    profile.vertices.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      VertexProfile& vp = profile.vertices[i];
      const VertexId u = order[i];
      vp.u = u;
      vp.order_position = i;
      if (i < vertex_stats.size()) {
        // Build records arrive in matching order, root first.
        vp.candidates_filtered = vertex_stats[i].candidates_filtered;
        vp.rejected_label = vertex_stats[i].rejected_label;
        vp.rejected_degree = vertex_stats[i].rejected_degree;
        vp.rejected_nlc = vertex_stats[i].rejected_nlc;
      }
      vp.candidates_built = built_sizes[u];
      vp.candidates_refined = index.at(u).candidates.size();
      if (u < pruned_per_vertex.size()) {
        vp.refine_pruned = pruned_per_vertex[u];
      }
      // Footprints reflect the layout enumeration actually read.
      const CeciIndex::VertexFootprint f = options.flat_index
                                               ? flat.MemoryFootprint(u)
                                               : index.MemoryFootprint(u);
      vp.te_keys = f.te_keys;
      vp.te_edges = f.te_edges;
      vp.te_bytes = f.te_bytes;
      vp.nte_lists = f.nte_lists;
      vp.nte_edges = f.nte_edges;
      vp.nte_bytes = f.nte_bytes;
      vp.candidate_bytes = f.candidate_bytes;
      if (i < stats.enumeration.calls_per_position.size()) {
        vp.recursive_calls = stats.enumeration.calls_per_position[i];
      }
      profile.te_bytes += f.te_bytes;
      profile.nte_bytes += f.nte_bytes;
      profile.candidate_bytes += f.candidate_bytes;
    }
    profile.index_bytes =
        profile.te_bytes + profile.nte_bytes + profile.candidate_bytes;
    profile.clusters = sched.cluster_skew;
    profile.work_units = sched.unit_skew;
    profile.enumerate_wall_seconds = stats.enumerate_seconds;
    profile.workers.resize(stats.worker_seconds.size());
    for (std::size_t w = 0; w < profile.workers.size(); ++w) {
      profile.workers[w].worker = w;
      profile.workers[w].busy_seconds = stats.worker_seconds[w];
      if (w < sched.worker_units.size()) {
        profile.workers[w].units = sched.worker_units[w];
      }
    }
  }

  finalize(reason);
  return result;
}

Result<std::uint64_t> CeciMatcher::Count(const Graph& query,
                                         std::size_t threads) const {
  MatchOptions options;
  options.threads = threads;
  auto result = Match(query, options);
  if (!result.ok()) return result.status();
  return result->embedding_count;
}

}  // namespace ceci
