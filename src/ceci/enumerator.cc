#include "ceci/enumerator.h"

#include <algorithm>

#include "util/intersection.h"
#include "util/logging.h"

namespace ceci {

Enumerator::Enumerator(const Graph& data, const QueryTree& tree,
                       const CeciIndex& index, const EnumOptions& options)
    : data_(&data), tree_(tree), index_(index), options_(options) {
  CECI_CHECK(options.symmetry != nullptr)
      << "pass SymmetryConstraints::None() to disable symmetry breaking";
  symmetry_ = options.symmetry;
  const std::size_t nq = tree.num_vertices();
  mapping_.assign(nq, kInvalidVertex);
  scratch_.resize(nq);
  span_scratch_.reserve(nq);
}

Enumerator::Enumerator(const QueryTree& tree, const CeciIndex& index,
                       const EnumOptions& options)
    : data_(nullptr), tree_(tree), index_(index), options_(options) {
  CECI_CHECK(options.nte_intersection)
      << "graph-free enumeration requires NTE intersection";
  CECI_CHECK(options.symmetry != nullptr)
      << "pass SymmetryConstraints::None() to disable symmetry breaking";
  symmetry_ = options.symmetry;
  const std::size_t nq = tree.num_vertices();
  mapping_.assign(nq, kInvalidVertex);
  scratch_.resize(nq);
  span_scratch_.reserve(nq);
}

void Enumerator::SetSharedLimit(std::atomic<std::uint64_t>* counter,
                                std::uint64_t limit) {
  shared_counter_ = counter;
  shared_limit_ = limit;
}

bool Enumerator::LimitReached() const {
  if (abort_flag_ != nullptr &&
      abort_flag_->load(std::memory_order_relaxed)) {
    return true;
  }
  return shared_counter_ != nullptr &&
         shared_counter_->load(std::memory_order_relaxed) >= shared_limit_;
}

std::uint64_t Enumerator::EnumerateAll(const EmbeddingVisitor* visitor) {
  std::uint64_t total = 0;
  for (VertexId pivot : index_.pivots(tree_)) {
    total += EnumerateCluster(pivot, visitor);
    if (stopped_ || LimitReached()) break;
  }
  return total;
}

std::uint64_t Enumerator::EnumerateCluster(VertexId pivot,
                                           const EmbeddingVisitor* visitor) {
  VertexId prefix[1] = {pivot};
  return EnumerateFromPrefix(std::span<const VertexId>(prefix, 1), visitor);
}

std::uint64_t Enumerator::EnumerateFromPrefix(
    std::span<const VertexId> prefix, const EmbeddingVisitor* visitor) {
  CECI_CHECK(!prefix.empty() && prefix.size() <= tree_.num_vertices());
  visitor_ = visitor;
  stopped_ = false;
  std::fill(mapping_.begin(), mapping_.end(), kInvalidVertex);
  const auto& order = tree_.matching_order();
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    mapping_[order[i]] = prefix[i];
  }
  const std::uint64_t before = stats_.embeddings;
  Recurse(prefix.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    mapping_[order[i]] = kInvalidVertex;
  }
  visitor_ = nullptr;
  return stats_.embeddings - before;
}

bool Enumerator::Emit() {
  if (shared_counter_ != nullptr) {
    std::uint64_t ticket =
        shared_counter_->fetch_add(1, std::memory_order_relaxed);
    if (ticket >= shared_limit_) {
      stopped_ = true;
      return false;
    }
  }
  ++stats_.embeddings;
  if (visitor_ != nullptr && !(*visitor_)(mapping_)) {
    stopped_ = true;
    if (abort_flag_ != nullptr) {
      abort_flag_->store(true, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

void Enumerator::Candidates(std::span<const VertexId> mapping, VertexId u,
                            std::vector<VertexId>* out) {
  const CeciVertexData& ud = index_.at(u);
  const VertexId parent_match = mapping[tree_.parent(u)];
  std::span<const VertexId> te = ud.te.Find(parent_match);

  const auto nte_ids = tree_.nte_in(u);
  if (options_.nte_intersection && !nte_ids.empty()) {
    span_scratch_.clear();
    span_scratch_.push_back(te);
    for (std::size_t k = 0; k < nte_ids.size(); ++k) {
      const VertexId u_n = tree_.non_tree_edges()[nte_ids[k]].parent;
      span_scratch_.push_back(ud.nte[k].Find(mapping[u_n]));
    }
    ++stats_.intersections;
    for (const auto& list : span_scratch_) {
      stats_.intersection_elements_in += list.size();
    }
    IntersectSortedMulti(span_scratch_, out);
    stats_.intersection_elements_out += out->size();
  } else {
    out->assign(te.begin(), te.end());
  }

  // Symmetry bounds: the candidate must exceed every already-matched
  // "must be less" partner and stay below every matched "must be greater"
  // partner. Candidates are sorted, so this is a range restriction.
  VertexId lo = 0;
  VertexId hi = kInvalidVertex;
  for (VertexId w : symmetry_->must_be_less(u)) {
    if (mapping[w] != kInvalidVertex) lo = std::max(lo, mapping[w] + 1);
  }
  for (VertexId w : symmetry_->must_be_greater(u)) {
    if (mapping[w] != kInvalidVertex) hi = std::min(hi, mapping[w]);
  }
  if (lo > 0 || hi != kInvalidVertex) {
    auto begin = std::lower_bound(out->begin(), out->end(), lo);
    auto end = std::lower_bound(begin, out->end(), hi);
    out->erase(end, out->end());
    out->erase(out->begin(), begin);
  }

  // Injectivity: drop vertices already used by the partial embedding.
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](VertexId v) {
                              for (VertexId m : mapping) {
                                if (m == v) return true;
                              }
                              return false;
                            }),
             out->end());

  // Edge-verification ablation: each surviving candidate must close every
  // matched non-tree edge on the data graph.
  if (!options_.nte_intersection && !nte_ids.empty()) {
    out->erase(std::remove_if(out->begin(), out->end(),
                              [&](VertexId v) {
                                for (std::uint32_t e : nte_ids) {
                                  const VertexId u_n =
                                      tree_.non_tree_edges()[e].parent;
                                  ++stats_.edge_verifications;
                                  if (!data_->HasEdge(v, mapping[u_n])) {
                                    return true;
                                  }
                                }
                                return false;
                              }),
               out->end());
  }
}

void Enumerator::CollectExtensions(std::span<const VertexId> mapping,
                                   VertexId u, std::vector<VertexId>* out) {
  Candidates(mapping, u, out);
}

bool Enumerator::Recurse(std::size_t pos) {
  ++stats_.recursive_calls;
  const auto& order = tree_.matching_order();
  if (pos == order.size()) {
    return Emit();
  }
  if (LimitReached()) {
    stopped_ = true;
    return false;
  }
  const VertexId u = order[pos];
  std::vector<VertexId>& cands = scratch_[pos];
  Candidates(mapping_, u, &cands);
  if (options_.leaf_count_shortcut && visitor_ == nullptr &&
      pos + 1 == order.size()) {
    // Counting fast path: every candidate completes exactly one embedding.
    std::uint64_t admit = cands.size();
    if (shared_counter_ != nullptr && admit > 0) {
      const std::uint64_t ticket =
          shared_counter_->fetch_add(admit, std::memory_order_relaxed);
      if (ticket >= shared_limit_) {
        admit = 0;
      } else {
        admit = std::min<std::uint64_t>(admit, shared_limit_ - ticket);
      }
      if (admit < cands.size()) stopped_ = true;
    }
    stats_.embeddings += admit;
    return !stopped_;
  }
  for (VertexId v : cands) {
    mapping_[u] = v;
    bool keep_going = Recurse(pos + 1);
    mapping_[u] = kInvalidVertex;
    if (!keep_going && stopped_) return false;
  }
  return true;
}

}  // namespace ceci
