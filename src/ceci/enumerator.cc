#include "ceci/enumerator.h"

#include <algorithm>

#include "util/bitmap.h"
#include "util/check.h"
#include "util/intersection.h"
#include "util/logging.h"

namespace ceci {
namespace {

// Restricts a sorted span to the symmetry window [lo, hi). Candidate lists
// are sorted, so the restriction is two binary searches on the input rather
// than a filter over the intersection output.
std::span<const VertexId> ClampToRange(std::span<const VertexId> s,
                                       VertexId lo, VertexId hi) {
  if (lo == 0 && hi == kInvalidVertex) return s;
  auto begin = std::lower_bound(s.begin(), s.end(), lo);
  auto end = std::lower_bound(begin, s.end(), hi);
  return s.subspan(static_cast<std::size_t>(begin - s.begin()),
                   static_cast<std::size_t>(end - begin));
}

// Restricts a sorted rank array to the data-id window [lo, hi). Ranks index
// the sorted `cand` array, so id order equals rank order and the bounds
// translate by binary search through the cand[] projection — O(log |entry|)
// probes into the small entry instead of O(log |cand|) over the whole
// candidate array.
std::span<const VertexId> ClampRanksById(std::span<const VertexId> ranks,
                                         std::span<const VertexId> cand,
                                         VertexId lo, VertexId hi) {
  auto begin = ranks.begin();
  auto end = ranks.end();
  const auto below = [cand](VertexId r, VertexId id) { return cand[r] < id; };
  if (lo > 0) begin = std::lower_bound(begin, end, lo, below);
  if (hi != kInvalidVertex) end = std::lower_bound(begin, end, hi, below);
  return {begin, end};
}

}  // namespace

Enumerator::Enumerator(const Graph& data, const QueryTree& tree,
                       IndexView index, const EnumOptions& options)
    : data_(&data),
      tree_(tree),
      index_(index.pointer()),
      flat_(index.flat()),
      options_(options) {
  CECI_CHECK(options.symmetry != nullptr)
      << "pass SymmetryConstraints::None() to disable symmetry breaking";
  symmetry_ = options.symmetry;
  const std::size_t nq = tree.num_vertices();
  mapping_.assign(nq, kInvalidVertex);
  scratch_.resize(nq);
  span_scratch_.reserve(nq);
  if (options.per_position_stats) stats_.calls_per_position.assign(nq, 0);
  InitUsedBitmap();
}

Enumerator::Enumerator(const QueryTree& tree, IndexView index,
                       const EnumOptions& options)
    : data_(nullptr),
      tree_(tree),
      index_(index.pointer()),
      flat_(index.flat()),
      options_(options) {
  CECI_CHECK(options.nte_intersection)
      << "graph-free enumeration requires NTE intersection";
  CECI_CHECK(options.symmetry != nullptr)
      << "pass SymmetryConstraints::None() to disable symmetry breaking";
  symmetry_ = options.symmetry;
  const std::size_t nq = tree.num_vertices();
  mapping_.assign(nq, kInvalidVertex);
  scratch_.resize(nq);
  span_scratch_.reserve(nq);
  if (options.per_position_stats) stats_.calls_per_position.assign(nq, 0);
  InitUsedBitmap();
}

void Enumerator::InitUsedBitmap() {
  // Sized for every data vertex that can appear in a mapping; MarkUsed
  // still grows on demand as a safety net (e.g. unrefined test indexes).
  std::size_t num_data = 0;
  if (data_ != nullptr) {
    num_data = data_->num_vertices();
  } else {
    const IndexView view =
        flat_ != nullptr ? IndexView(*flat_) : IndexView(*index_);
    for (VertexId u = 0; u < tree_.num_vertices(); ++u) {
      const auto cands = view.candidates(u);
      if (!cands.empty()) {
        num_data = std::max<std::size_t>(num_data, cands.back() + 1);
      }
    }
  }
  used_.assign((num_data + 63) / 64, 0);
}

void Enumerator::SetSharedLimit(std::atomic<std::uint64_t>* counter,
                                std::uint64_t limit) {
  shared_counter_ = counter;
  shared_limit_ = limit;
}

bool Enumerator::LimitReached() const {
  if (abort_flag_ != nullptr &&
      abort_flag_->load(std::memory_order_relaxed)) {
    return true;
  }
  if (budget_ != nullptr && budget_->Exhausted()) return true;
  return shared_counter_ != nullptr &&
         shared_counter_->load(std::memory_order_relaxed) >= shared_limit_;
}

std::size_t Enumerator::StateBytes() const {
  std::size_t bytes = mapping_.capacity() * sizeof(VertexId) +
                      used_.capacity() * sizeof(std::uint64_t) +
                      flipped_scratch_.capacity() * sizeof(VertexId) +
                      span_scratch_.capacity() *
                          sizeof(std::span<const VertexId>) +
                      entry_scratch_.capacity() *
                          sizeof(FlatCeciIndex::EntryRef) +
                      rank_scratch_.capacity() * sizeof(VertexId) +
                      rank_tmp_.capacity() * sizeof(VertexId) +
                      bitmap_scratch_.capacity() * sizeof(std::uint64_t);
  for (const auto& s : scratch_) {
    bytes += sizeof(s) + s.capacity() * sizeof(VertexId);
  }
  return bytes;
}

std::uint64_t Enumerator::EnumerateAll(const EmbeddingVisitor* visitor) {
  std::uint64_t total = 0;
  const std::span<const VertexId> pivots =
      flat_ != nullptr ? flat_->candidates(tree_.root())
                       : std::span<const VertexId>(index_->pivots(tree_));
  for (VertexId pivot : pivots) {
    total += EnumerateCluster(pivot, visitor);
    if (stopped_ || LimitReached()) break;
  }
  return total;
}

std::uint64_t Enumerator::EnumerateCluster(VertexId pivot,
                                           const EmbeddingVisitor* visitor) {
  VertexId prefix[1] = {pivot};
  return EnumerateFromPrefix(std::span<const VertexId>(prefix, 1), visitor);
}

std::uint64_t Enumerator::EnumerateFromPrefix(
    std::span<const VertexId> prefix, const EmbeddingVisitor* visitor) {
  CECI_CHECK(!prefix.empty() && prefix.size() <= tree_.num_vertices());
  visitor_ = visitor;
  stopped_ = false;
  std::fill(mapping_.begin(), mapping_.end(), kInvalidVertex);
  const auto& order = tree_.matching_order();
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    CECI_DCHECK(!IsUsed(prefix[i]))
        << "prefix repeats data vertex v" << prefix[i];
    mapping_[order[i]] = prefix[i];
    MarkUsed(prefix[i]);
  }
  const std::uint64_t before = stats_.embeddings;
  Recurse(prefix.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    mapping_[order[i]] = kInvalidVertex;
    UnmarkUsed(prefix[i]);
  }
  visitor_ = nullptr;
  return stats_.embeddings - before;
}

bool Enumerator::Emit() {
  if (shared_counter_ != nullptr) {
    std::uint64_t ticket =
        shared_counter_->fetch_add(1, std::memory_order_relaxed);
    if (ticket >= shared_limit_) {
      stopped_ = true;
      return false;
    }
  }
  ++stats_.embeddings;
  if (visitor_ != nullptr && !(*visitor_)(mapping_)) {
    stopped_ = true;
    if (abort_flag_ != nullptr) {
      abort_flag_->store(true, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

void Enumerator::SymmetryRange(std::span<const VertexId> mapping, VertexId u,
                               VertexId* lo, VertexId* hi) const {
  // The candidate must exceed every already-matched "must be less" partner
  // and stay below every matched "must be greater" partner.
  VertexId l = 0;
  VertexId h = kInvalidVertex;
  for (VertexId w : symmetry_->must_be_less(u)) {
    if (mapping[w] != kInvalidVertex) l = std::max(l, mapping[w] + 1);
  }
  for (VertexId w : symmetry_->must_be_greater(u)) {
    if (mapping[w] != kInvalidVertex) h = std::min(h, mapping[w]);
  }
  *lo = l;
  *hi = h;
}

void Enumerator::Candidates(std::span<const VertexId> mapping, VertexId u,
                            std::vector<VertexId>* out) {
  if (flat_ != nullptr) {
    CandidatesFlat(mapping, u, out);
    return;
  }
  const CeciVertexData& ud = index_->at(u);
  const VertexId parent_match = mapping[tree_.parent(u)];
  // The matching order is a topological order of the query tree: by the
  // time u extends, its tree parent (and every NTE parent, checked below)
  // must already be matched.
  CECI_DCHECK_NE(parent_match, kInvalidVertex)
      << "tree parent of u" << u << " unmatched";
  // Symmetry first: narrowing the TE input bounds the intersection's output
  // (and usually its work) before any element is materialized.
  VertexId lo, hi;
  SymmetryRange(mapping, u, &lo, &hi);
  std::span<const VertexId> te =
      ClampToRange(ud.te.Find(parent_match), lo, hi);

  const auto nte_ids = tree_.nte_in(u);
  if (options_.nte_intersection && !nte_ids.empty()) {
    span_scratch_.clear();
    span_scratch_.push_back(te);
    for (std::size_t k = 0; k < nte_ids.size(); ++k) {
      const VertexId u_n = tree_.non_tree_edges()[nte_ids[k]].parent;
      CECI_DCHECK_NE(mapping[u_n], kInvalidVertex)
          << "NTE parent u" << u_n << " of u" << u << " unmatched";
      span_scratch_.push_back(ud.nte[k].Find(mapping[u_n]));
    }
    ++stats_.intersections;
    for (const auto& list : span_scratch_) {
      stats_.intersection_elements_in += list.size();
    }
    IntersectSortedMulti(span_scratch_, out);
    stats_.intersection_elements_out += out->size();
  } else {
    out->assign(te.begin(), te.end());
  }

  // Injectivity: drop vertices already used by the partial embedding. The
  // bitmap mirrors `mapping`, turning the old per-candidate scan over the
  // mapping into one bit probe.
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](VertexId v) { return IsUsed(v); }),
             out->end());

  // Edge-verification ablation: each surviving candidate must close every
  // matched non-tree edge on the data graph.
  if (!options_.nte_intersection && !nte_ids.empty()) {
    out->erase(std::remove_if(out->begin(), out->end(),
                              [&](VertexId v) {
                                for (std::uint32_t e : nte_ids) {
                                  const VertexId u_n =
                                      tree_.non_tree_edges()[e].parent;
                                  ++stats_.edge_verifications;
                                  if (!data_->HasEdge(v, mapping[u_n])) {
                                    return true;
                                  }
                                }
                                return false;
                              }),
               out->end());
  }
}

std::uint64_t Enumerator::CountLeafCandidates(VertexId u) {
  if (flat_ != nullptr) return CountLeafCandidatesFlat(u);
  const CeciVertexData& ud = index_->at(u);
  VertexId lo, hi;
  SymmetryRange(mapping_, u, &lo, &hi);
  std::span<const VertexId> te =
      ClampToRange(ud.te.Find(mapping_[tree_.parent(u)]), lo, hi);

  const auto nte_ids = tree_.nte_in(u);
  span_scratch_.clear();
  span_scratch_.push_back(te);
  for (std::size_t k = 0; k < nte_ids.size(); ++k) {
    const VertexId u_n = tree_.non_tree_edges()[nte_ids[k]].parent;
    span_scratch_.push_back(ud.nte[k].Find(mapping_[u_n]));
  }
  if (!nte_ids.empty()) {
    ++stats_.intersections;
    for (const auto& list : span_scratch_) {
      stats_.intersection_elements_in += list.size();
    }
  }
  std::size_t count = IntersectionSizeMulti(span_scratch_);
  if (!nte_ids.empty()) stats_.intersection_elements_out += count;
  if (count > 0) {
    // Injectivity: mapped data vertices inside the window were counted by
    // the kernel but cannot extend the embedding. The TE span is already
    // clamped, so membership in every list implies membership in [lo, hi).
    for (VertexId m : mapping_) {
      if (m == kInvalidVertex) continue;
      bool in_all = true;
      for (const auto& list : span_scratch_) {
        if (!SortedContains(list, m)) {
          in_all = false;
          break;
        }
      }
      if (in_all) --count;
    }
  }
  return count;
}

bool Enumerator::GatherFlatRefs(std::span<const VertexId> mapping,
                                VertexId u, bool with_nte, VertexId* lo,
                                VertexId* hi) {
  entry_scratch_.clear();
  const VertexId parent_match = mapping[tree_.parent(u)];
  CECI_DCHECK_NE(parent_match, kInvalidVertex)
      << "tree parent of u" << u << " unmatched";
  const FlatCeciIndex::EntryRef te = flat_->Te(u, parent_match);
  if (te.count == 0) return false;
  entry_scratch_.push_back(te);
  if (with_nte) {
    const auto nte_ids = tree_.nte_in(u);
    for (std::size_t k = 0; k < nte_ids.size(); ++k) {
      const VertexId u_n = tree_.non_tree_edges()[nte_ids[k]].parent;
      CECI_DCHECK_NE(mapping[u_n], kInvalidVertex)
          << "NTE parent u" << u_n << " of u" << u << " unmatched";
      const FlatCeciIndex::EntryRef ref = flat_->Nte(u, k, mapping[u_n]);
      if (ref.count == 0) return false;
      entry_scratch_.push_back(ref);
    }
  }
  // The symmetry window stays in *id* space: consumers clamp the (small)
  // rank arrays through the cand[] projection (ClampRanksById), or
  // translate to ranks only on the rare all-bitmap path. Translating to
  // ranks here cost two lower_bounds over the whole candidate array per
  // call — the single biggest flat-path overhead in profiles.
  SymmetryRange(mapping, u, lo, hi);
  return *hi == kInvalidVertex || *lo < *hi;
}

void Enumerator::CandidatesFlat(std::span<const VertexId> mapping, VertexId u,
                                std::vector<VertexId>* out) {
  out->clear();
  VertexId lo, hi;
  if (!GatherFlatRefs(mapping, u, options_.nte_intersection, &lo, &hi)) {
    return;
  }
  const std::span<const VertexId> cand = flat_->candidates(u);

  // Split by representation. Rank arrays are sorted u32 — exactly what the
  // SIMD kernels eat — so they reuse span_scratch_ (VertexId == u32).
  span_scratch_.clear();
  bool have_bitmap = false;
  for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
    if (ref.is_bitmap()) {
      have_bitmap = true;
    } else {
      span_scratch_.push_back(ref.ranks);
    }
  }
  const bool count_stats = entry_scratch_.size() > 1;
  if (count_stats) {
    ++stats_.intersections;
    for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
      stats_.intersection_elements_in += ref.count;
    }
  }

  rank_scratch_.clear();
  if (!span_scratch_.empty()) {
    // At least one rank array: the symmetry window clamps the first array
    // through the cand[] projection (the intersection output is a subset
    // of every input), so no global rank window is ever materialized.
    span_scratch_[0] = ClampRanksById(span_scratch_[0], cand, lo, hi);
    if (!have_bitmap && span_scratch_.size() == 1) {
      // Lone TE array (no NTE constraints): decode straight from the
      // clamped rank span — no intersection kernel, no intermediate copy.
      // This mirrors the pointer path's plain-assign case.
      out->reserve(span_scratch_[0].size());
      for (VertexId r : span_scratch_[0]) {
        const VertexId v = cand[r];
        if (!IsUsed(v)) out->push_back(v);
      }
      ApplyEdgeVerification(mapping, u, out);
      return;
    }
    if (!have_bitmap) {
      IntersectSortedMulti(span_scratch_, &rank_scratch_);
    } else {
      // Mixed: accumulate the dense entries (seeded from the first, no
      // window mask needed — the array side is already windowed),
      // intersect the array side, probe the accumulator per survivor.
      bool seeded = false;
      for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
        if (!ref.is_bitmap()) continue;
        if (!seeded) {
          bitmap_scratch_.assign(ref.bits.begin(), ref.bits.end());
          seeded = true;
        } else {
          BitmapAndInPlace(bitmap_scratch_, ref.bits);
        }
      }
      IntersectSortedMulti(span_scratch_, &rank_tmp_);
      for (VertexId r : rank_tmp_) {
        if (BitmapTest(bitmap_scratch_, r)) rank_scratch_.push_back(r);
      }
    }
  } else {
    // All-bitmap: here the window must be translated to rank space after
    // all. Accumulator seeded all-ones, windowed, ANDed with every entry.
    const std::uint32_t rlo =
        lo == 0 ? 0
                : static_cast<std::uint32_t>(
                      std::lower_bound(cand.begin(), cand.end(), lo) -
                      cand.begin());
    const std::uint32_t rhi =
        hi == kInvalidVertex
            ? static_cast<std::uint32_t>(cand.size())
            : static_cast<std::uint32_t>(
                  std::lower_bound(cand.begin(), cand.end(), hi) -
                  cand.begin());
    if (rlo >= rhi) return;
    bitmap_scratch_.assign(flat_->bitmap_words(u), ~std::uint64_t{0});
    BitmapMaskWindow(bitmap_scratch_, rlo, rhi);
    for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
      BitmapAndInPlace(bitmap_scratch_, ref.bits);
    }
    BitmapExtract(bitmap_scratch_, &rank_scratch_);
  }
  if (count_stats) stats_.intersection_elements_out += rank_scratch_.size();

  // Decode ranks to data-vertex ids, folding in injectivity.
  out->reserve(rank_scratch_.size());
  for (VertexId r : rank_scratch_) {
    const VertexId v = cand[r];
    if (!IsUsed(v)) out->push_back(v);
  }

  ApplyEdgeVerification(mapping, u, out);
}

// Edge-verification ablation filter (no-op under NTE intersection), shared
// by both CandidatesFlat exits; matches the pointer path's behaviour.
void Enumerator::ApplyEdgeVerification(std::span<const VertexId> mapping,
                                       VertexId u,
                                       std::vector<VertexId>* out) {
  const auto nte_ids = tree_.nte_in(u);
  if (options_.nte_intersection || nte_ids.empty()) return;
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](VertexId v) {
                              for (std::uint32_t e : nte_ids) {
                                const VertexId u_n =
                                    tree_.non_tree_edges()[e].parent;
                                ++stats_.edge_verifications;
                                if (!data_->HasEdge(v, mapping[u_n])) {
                                  return true;
                                }
                              }
                              return false;
                            }),
             out->end());
}

std::uint64_t Enumerator::CountLeafCandidatesFlat(VertexId u) {
  VertexId lo, hi;
  if (!GatherFlatRefs(mapping_, u, true, &lo, &hi)) return 0;
  const std::span<const VertexId> cand = flat_->candidates(u);

  span_scratch_.clear();
  bool have_bitmap = false;
  for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
    if (ref.is_bitmap()) {
      have_bitmap = true;
    } else {
      span_scratch_.push_back(ref.ranks);
    }
  }
  const bool count_stats = entry_scratch_.size() > 1;
  if (count_stats) {
    ++stats_.intersections;
    for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
      stats_.intersection_elements_in += ref.count;
    }
  }

  std::size_t count;
  if (!span_scratch_.empty()) {
    // Window the array side through the cand[] projection, as in
    // CandidatesFlat; the counting kernels then never see ranks outside
    // the symmetry window.
    span_scratch_[0] = ClampRanksById(span_scratch_[0], cand, lo, hi);
    if (!have_bitmap) {
      count = IntersectionSizeMulti(span_scratch_);
    } else {
      bool seeded = false;
      for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
        if (!ref.is_bitmap()) continue;
        if (!seeded) {
          bitmap_scratch_.assign(ref.bits.begin(), ref.bits.end());
          seeded = true;
        } else {
          BitmapAndInPlace(bitmap_scratch_, ref.bits);
        }
      }
      IntersectSortedMulti(span_scratch_, &rank_tmp_);
      count = 0;
      for (VertexId r : rank_tmp_) {
        count += BitmapTest(bitmap_scratch_, r) ? 1 : 0;
      }
    }
  } else {
    const std::uint32_t rlo =
        lo == 0 ? 0
                : static_cast<std::uint32_t>(
                      std::lower_bound(cand.begin(), cand.end(), lo) -
                      cand.begin());
    const std::uint32_t rhi =
        hi == kInvalidVertex
            ? static_cast<std::uint32_t>(cand.size())
            : static_cast<std::uint32_t>(
                  std::lower_bound(cand.begin(), cand.end(), hi) -
                  cand.begin());
    if (rlo >= rhi) return 0;
    bitmap_scratch_.assign(flat_->bitmap_words(u), ~std::uint64_t{0});
    BitmapMaskWindow(bitmap_scratch_, rlo, rhi);
    for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
      BitmapAndInPlace(bitmap_scratch_, ref.bits);
    }
    count = BitmapPopcount(bitmap_scratch_);
  }
  if (count_stats) stats_.intersection_elements_out += count;

  if (count > 0) {
    // Injectivity: mapped data vertices inside the window were counted by
    // the kernels but cannot extend the embedding. The rank of a mapped
    // vertex is recovered through the first (already windowed) array entry
    // when one exists — absence there already rules it out — and only the
    // all-bitmap case falls back to a search over the candidate array.
    for (VertexId m : mapping_) {
      if (m == kInvalidVertex) continue;
      if (m < lo || (hi != kInvalidVertex && m >= hi)) continue;
      std::uint32_t r;
      if (!span_scratch_.empty()) {
        const std::span<const VertexId> rs = span_scratch_[0];
        auto it = std::lower_bound(
            rs.begin(), rs.end(), m,
            [&](VertexId rr, VertexId id) { return cand[rr] < id; });
        if (it == rs.end() || cand[*it] != m) continue;
        r = *it;
      } else {
        auto it = std::lower_bound(cand.begin(), cand.end(), m);
        if (it == cand.end() || *it != m) continue;
        r = static_cast<std::uint32_t>(it - cand.begin());
      }
      bool in_all = true;
      for (const FlatCeciIndex::EntryRef& ref : entry_scratch_) {
        if (ref.is_bitmap() ? !BitmapTest(ref.bits, r)
                            : !SortedContains(ref.ranks, r)) {
          in_all = false;
          break;
        }
      }
      if (in_all) --count;
    }
  }
  return count;
}

void Enumerator::CollectExtensions(std::span<const VertexId> mapping,
                                   VertexId u, std::vector<VertexId>* out) {
  // The recursion keeps used_ synced with mapping_; external callers hand
  // an arbitrary mapping, so mirror it into the bitmap for this call.
  // Only bits this call actually flips are cleared afterwards, which keeps
  // a concurrent invariant (used_ == contents of mapping_) intact when the
  // two mappings coincide.
  flipped_scratch_.clear();
  for (VertexId m : mapping) {
    if (m != kInvalidVertex && !IsUsed(m)) {
      MarkUsed(m);
      flipped_scratch_.push_back(m);
    }
  }
  Candidates(mapping, u, out);
  for (VertexId m : flipped_scratch_) UnmarkUsed(m);
}

bool Enumerator::Recurse(std::size_t pos) {
  ++stats_.recursive_calls;
  // Empty vector unless per_position_stats; the check is one size compare.
  if (pos < stats_.calls_per_position.size()) {
    ++stats_.calls_per_position[pos];
  }
  // Cooperative budget poll: the countdown keeps the hot path at one
  // decrement; the clock/token are touched once per stride.
  if (budget_ != nullptr && --budget_countdown_ == 0) {
    budget_countdown_ = budget_->stride();
    if (budget_->Poll()) {
      stopped_ = true;
      return false;
    }
  }
  const auto& order = tree_.matching_order();
  if (pos == order.size()) {
    return Emit();
  }
  if (LimitReached()) {
    stopped_ = true;
    return false;
  }
  const VertexId u = order[pos];
  if (options_.leaf_count_shortcut && visitor_ == nullptr &&
      pos + 1 == order.size()) {
    // Counting fast path: every candidate completes exactly one embedding,
    // so count through the kernel without materializing the final level.
    std::uint64_t admit;
    if (options_.nte_intersection) {
      admit = CountLeafCandidates(u);
    } else {
      // The edge-verification ablation must probe each candidate.
      std::vector<VertexId>& cands = scratch_[pos];
      Candidates(mapping_, u, &cands);
      admit = cands.size();
    }
    if (shared_counter_ != nullptr && admit > 0) {
      const std::uint64_t requested = admit;
      const std::uint64_t ticket =
          shared_counter_->fetch_add(admit, std::memory_order_relaxed);
      if (ticket >= shared_limit_) {
        admit = 0;
      } else {
        admit = std::min<std::uint64_t>(admit, shared_limit_ - ticket);
      }
      if (admit < requested) stopped_ = true;
    }
    stats_.embeddings += admit;
    return !stopped_;
  }
  std::vector<VertexId>& cands = scratch_[pos];
  Candidates(mapping_, u, &cands);
  for (VertexId v : cands) {
    // Candidates() already dropped used vertices; a hit here means the
    // injectivity bitmap went stale.
    CECI_DCHECK(!IsUsed(v)) << "candidate v" << v << " already used";
    mapping_[u] = v;
    MarkUsed(v);
    bool keep_going = Recurse(pos + 1);
    UnmarkUsed(v);
    mapping_[u] = kInvalidVertex;
    if (!keep_going && stopped_) return false;
  }
  return true;
}

}  // namespace ceci
