// Arena-backed flat CECI with hybrid candidate-set entries.
//
// The mutable CeciIndex (ceci_index.h) is pointer-rich: every TE/NTE value
// set is its own heap vector, so the "compact" index of paper §3.4 spends
// much of its bytes on allocator metadata and its enumeration time on
// pointer chasing. FlatCeciIndex is the frozen form the enumerator actually
// reads: the entire index lives in ONE contiguous 8-byte-aligned arena cut
// into nine typed slabs addressed by `uint32` offsets (the katana
// LargeArray idiom). Built from a *refined* CeciIndex by Build(); the
// builder and refinement keep their mutable working form untouched.
//
// Layout (canonical slab order; see docs/index_layout.md for the full map):
//
//   kVertexMeta    FlatVertexMeta per query vertex
//   kOrder         the matching order the index was built for
//   kCandidates    all candidate arrays, concatenated (data-vertex ids)
//   kCardinalities refinement cardinalities, parallel to kCandidates
//   kListMeta      FlatListMeta per TE/NTE list
//   kKeys          all list keys, concatenated (parent data-vertex ids)
//   kEntries       FlatEntry per key, parallel to kKeys
//   kArrayPool     sparse value sets: sorted u32 *ranks* into the owning
//                  vertex's candidate array
//   kBitmapPool    dense value sets: fixed-width bitmaps over those ranks
//
// Hybrid representation: a value set of a vertex with n candidates becomes
// a bitmap iff its bitmap (ceil(n/64) words = 8·words bytes) is smaller
// than its sorted array (4·count bytes) — i.e. dense entries pay ~n/8
// bytes total while sparse ones stay 4 bytes/element. Because every stored
// value is a *rank*, array entries intersect through the existing SIMD
// sorted-u32 kernels (util/intersection.h) unchanged, bitmap entries
// through word-wise AND/popcount (util/bitmap.h), and the two mix freely
// in one intersection. The id of rank r is candidates(u)[r] — one
// contiguous lookup per emitted element.
//
// A FlatCeciIndex either owns its arena (Build, Clone, file read) or
// borrows it from a read-only mmap (index_io.h), which is how
// `ceci_serve --index` shares one physical index image across every
// connection and process. The structure is immutable after construction;
// concurrent readers need no synchronization.
#ifndef CECI_CECI_FLAT_INDEX_H_
#define CECI_CECI_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "ceci/ceci_index.h"
#include "ceci/query_tree.h"
#include "graph/types.h"
#include "util/mapped_file.h"
#include "util/status.h"

namespace ceci {

/// Per-query-vertex record (kVertexMeta slab).
struct FlatVertexMeta {
  std::uint32_t cand_begin = 0;   // into kCandidates / kCardinalities
  std::uint32_t cand_count = 0;
  std::uint32_t bitmap_words = 0;  // ceil(cand_count / 64)
  std::uint32_t te_list = 0;       // into kListMeta; kNoFlatList for root
  std::uint32_t nte_begin = 0;     // first NTE list, into kListMeta
  std::uint32_t nte_count = 0;     // == |QueryTree::nte_in(u)|
};

/// Per-list record (kListMeta slab). Keys and entries are parallel:
/// key i of this list is kKeys[key_begin + i] with entry
/// kEntries[entry_begin + i].
struct FlatListMeta {
  std::uint32_t key_begin = 0;
  std::uint32_t key_count = 0;
  std::uint32_t entry_begin = 0;
  std::uint32_t owner = 0;  // child query vertex whose ranks the values use
};

/// One key's value set (kEntries slab). Bit 31 of `count_and_tag` selects
/// the representation; the low 31 bits hold the element count either way.
struct FlatEntry {
  std::uint32_t offset = 0;  // into kArrayPool (u32s) or kBitmapPool (words)
  std::uint32_t count_and_tag = 0;

  static constexpr std::uint32_t kBitmapTag = 0x80000000u;
  std::uint32_t count() const { return count_and_tag & ~kBitmapTag; }
  bool is_bitmap() const { return (count_and_tag & kBitmapTag) != 0; }
};

inline constexpr std::uint32_t kNoFlatList = 0xFFFFFFFFu;

// Layout contract. These three records ARE the on-disk CEIX format
// (index_io.h serializes the slabs byte-for-byte), so their exact size,
// alignment, and field placement are ABI: a compiler or refactor that
// moves a field silently corrupts every saved index. Pinning offsetof per
// field turns that into a compile error here rather than a checksum
// mismatch (or worse) at load time. All three must stay standard-layout
// and trivially copyable — the reader casts raw arena bytes to them.
static_assert(sizeof(FlatVertexMeta) == 24);
static_assert(alignof(FlatVertexMeta) == 4);
static_assert(std::is_standard_layout_v<FlatVertexMeta>);
static_assert(std::is_trivially_copyable_v<FlatVertexMeta>);
static_assert(offsetof(FlatVertexMeta, cand_begin) == 0);
static_assert(offsetof(FlatVertexMeta, cand_count) == 4);
static_assert(offsetof(FlatVertexMeta, bitmap_words) == 8);
static_assert(offsetof(FlatVertexMeta, te_list) == 12);
static_assert(offsetof(FlatVertexMeta, nte_begin) == 16);
static_assert(offsetof(FlatVertexMeta, nte_count) == 20);

static_assert(sizeof(FlatListMeta) == 16);
static_assert(alignof(FlatListMeta) == 4);
static_assert(std::is_standard_layout_v<FlatListMeta>);
static_assert(std::is_trivially_copyable_v<FlatListMeta>);
static_assert(offsetof(FlatListMeta, key_begin) == 0);
static_assert(offsetof(FlatListMeta, key_count) == 4);
static_assert(offsetof(FlatListMeta, entry_begin) == 8);
static_assert(offsetof(FlatListMeta, owner) == 12);

static_assert(sizeof(FlatEntry) == 8);
static_assert(alignof(FlatEntry) == 4);
static_assert(std::is_standard_layout_v<FlatEntry>);
static_assert(std::is_trivially_copyable_v<FlatEntry>);
static_assert(offsetof(FlatEntry, offset) == 0);
static_assert(offsetof(FlatEntry, count_and_tag) == 4);
static_assert(FlatEntry::kBitmapTag == (1u << 31),
              "bit 31 tags bitmap entries; the low 31 bits are the count");

class FlatCeciIndex {
 public:
  enum SlabKind : std::uint32_t {
    kVertexMeta = 0,
    kOrder,
    kCandidates,
    kCardinalities,
    kListMeta,
    kKeys,
    kEntries,
    kArrayPool,
    kBitmapPool,
  };
  static constexpr std::size_t kNumSlabs = 9;

  /// One slab's placement inside the arena (byte offsets, 8-aligned).
  struct Slab {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };

  /// A value set handed to the enumerator: exactly one of `ranks` / `bits`
  /// is non-empty (both empty for an absent key). Elements are ranks into
  /// candidates(owner).
  struct EntryRef {
    std::span<const std::uint32_t> ranks;  // sorted, strictly ascending
    std::span<const std::uint64_t> bits;   // fixed width: bitmap_words(owner)
    std::uint32_t count = 0;
    bool is_bitmap() const { return !bits.empty(); }
  };

  FlatCeciIndex() = default;
  FlatCeciIndex(FlatCeciIndex&&) noexcept = default;
  FlatCeciIndex& operator=(FlatCeciIndex&&) noexcept = default;
  FlatCeciIndex(const FlatCeciIndex&) = delete;
  FlatCeciIndex& operator=(const FlatCeciIndex&) = delete;

  /// Freezes a *refined* mutable index into the flat form. Every TE/NTE
  /// value must be an alive candidate of its child vertex (the refinement
  /// postcondition the auditor calls kValueNotCandidate) — ranks are not
  /// defined otherwise (checked).
  static FlatCeciIndex Build(const CeciIndex& index, const QueryTree& tree);

  /// Reconstructs the index from an arena image (an owned byte copy or a
  /// read-only mapping; exactly one is used, the other default). The slab
  /// table and every structural offset are fully validated so a corrupt
  /// arena yields kCorruption here, never an out-of-bounds access later.
  /// Used by index_io; Build() skips this (correct by construction).
  static Result<FlatCeciIndex> FromArena(std::vector<std::uint64_t> owned,
                                         MappedFile mapped,
                                         std::size_t arena_offset,
                                         std::size_t arena_bytes,
                                         std::span<const Slab> slabs,
                                         std::size_t num_query_vertices);

  bool empty() const { return arena_ == nullptr; }
  bool mapped() const { return mapped_.valid() && mapped_.size() > 0; }

  /// Deep copy with an owned arena (e.g. to audit past the source's
  /// lifetime). Explicit because the arena can be large.
  FlatCeciIndex Clone() const;

  std::size_t num_query_vertices() const { return vertices_.size(); }
  std::span<const VertexId> matching_order() const { return order_; }

  std::span<const VertexId> candidates(VertexId u) const {
    const FlatVertexMeta& m = vertices_[u];
    return candidates_.subspan(m.cand_begin, m.cand_count);
  }
  std::span<const Cardinality> cardinalities(VertexId u) const {
    const FlatVertexMeta& m = vertices_[u];
    return cardinalities_.subspan(m.cand_begin, m.cand_count);
  }
  std::uint32_t bitmap_words(VertexId u) const {
    return vertices_[u].bitmap_words;
  }
  std::uint32_t nte_count(VertexId u) const { return vertices_[u].nte_count; }

  /// Visits every (list, key) pair in vertex order: TE list first (absent
  /// for the root), then NTE lists in paper order. `nte_slot` is -1 for
  /// the TE list, else the index into QueryTree::nte_in(owner). Used by
  /// index inflation and layout diagnostics.
  template <typename Fn>  // Fn(VertexId owner, std::int32_t nte_slot,
                          //    VertexId key, const EntryRef& ref)
  void ForEachList(Fn&& fn) const {
    for (VertexId u = 0; u < vertices_.size(); ++u) {
      const FlatVertexMeta& m = vertices_[u];
      auto visit = [&](std::uint32_t l, std::int32_t slot) {
        const FlatListMeta& lm = lists_[l];
        for (std::uint32_t i = 0; i < lm.key_count; ++i) {
          fn(u, slot, keys_[lm.key_begin + i],
             MakeRef(entries_[lm.entry_begin + i], lm.owner));
        }
      };
      if (m.te_list != kNoFlatList) visit(m.te_list, -1);
      for (std::uint32_t k = 0; k < m.nte_count; ++k) {
        visit(m.nte_begin + k, static_cast<std::int32_t>(k));
      }
    }
  }

  /// TE value set of u for the tree parent's match; count == 0 (both spans
  /// empty) when the key is absent. Binary search over the list's keys.
  EntryRef Te(VertexId u, VertexId parent_match) const;
  /// NTE value set of u for incoming non-tree edge k (paper order,
  /// parallel to QueryTree::nte_in(u)).
  EntryRef Nte(VertexId u, std::size_t k, VertexId parent_match) const;

  /// cardinality(u, v); zero if v is not an alive candidate of u.
  Cardinality CardinalityOf(VertexId u, VertexId v) const;

  /// Exact arena size — the bytes enumeration (and an mmap) actually
  /// touches. This is the figure MemoryFootprint sums to (± slab padding).
  std::size_t ArenaBytes() const { return arena_bytes_; }

  /// Total candidate edges stored across all TE and NTE entries.
  std::size_t TotalCandidateEdges() const;

  /// Entries per representation (hybrid split diagnostics).
  std::size_t ArrayEntries() const;
  std::size_t BitmapEntries() const;

  /// Exact per-vertex byte accounting over the slabs: every slab element
  /// is attributed to the query vertex that owns it (vertex meta + order
  /// entry count as candidate_bytes). Summed over all vertices this equals
  /// ArenaBytes() minus inter-slab alignment padding (< 8 bytes per slab).
  CeciIndex::VertexFootprint MemoryFootprint(VertexId u) const;

  /// Raw arena for persistence (index_io) and the slab table describing
  /// it. The arena starts 8-aligned and slabs appear in SlabKind order.
  std::span<const std::byte> arena() const {
    return {arena_, arena_bytes_};
  }
  const Slab& slab(SlabKind kind) const { return slabs_[kind]; }

  /// Largest data-vertex id stored in any candidate set, or 0 when empty.
  /// Load-time sanity check against the serving data graph.
  VertexId MaxCandidateId() const;

  /// Raw typed slab views for layout auditing (invariant_auditor.h). The
  /// auditor re-derives every offset bound from these instead of going
  /// through the checked accessors, so it can report on corrupt metas
  /// without tripping them.
  std::span<const FlatVertexMeta> vertex_metas() const { return vertices_; }
  std::span<const FlatListMeta> list_metas() const { return lists_; }
  std::span<const VertexId> all_keys() const { return keys_; }
  std::span<const FlatEntry> all_entries() const { return entries_; }
  std::span<const std::uint32_t> array_pool() const { return array_pool_; }
  std::span<const std::uint64_t> bitmap_pool() const { return bitmap_pool_; }

 private:
  friend class FlatIndexTestPeer;  // corruption planting (auditor tests)

  /// Derives the typed spans from arena_ + slabs_; arena must be set.
  void BindSpans();
  /// Deep structural validation of a freshly bound arena (see FromArena).
  Status ValidateStructure() const;

  EntryRef ListFind(std::uint32_t list_index, VertexId key) const;
  EntryRef MakeRef(const FlatEntry& entry, VertexId owner) const;

  // Arena storage: exactly one of owned_ / mapped_ backs arena_.
  std::vector<std::uint64_t> owned_;
  MappedFile mapped_;
  const std::byte* arena_ = nullptr;
  std::size_t arena_bytes_ = 0;
  Slab slabs_[kNumSlabs] = {};

  // Typed views into the arena (derived, never owning).
  std::span<const FlatVertexMeta> vertices_;
  std::span<const VertexId> order_;
  std::span<const VertexId> candidates_;
  std::span<const Cardinality> cardinalities_;
  std::span<const FlatListMeta> lists_;
  std::span<const VertexId> keys_;
  std::span<const FlatEntry> entries_;
  std::span<const std::uint32_t> array_pool_;
  std::span<const std::uint64_t> bitmap_pool_;
};

/// Cheap two-pointer view over either index layout. Scheduler, work-unit
/// decomposition, and the enumerator take IndexView so call sites pass a
/// CeciIndex or a FlatCeciIndex interchangeably (implicit conversion);
/// exactly one of pointer()/flat() is non-null.
class IndexView {
 public:
  IndexView(const CeciIndex& index) : index_(&index) {}        // NOLINT
  IndexView(const FlatCeciIndex& flat) : flat_(&flat) {}       // NOLINT

  const CeciIndex* pointer() const { return index_; }
  const FlatCeciIndex* flat() const { return flat_; }

  std::size_t num_query_vertices() const {
    return flat_ != nullptr ? flat_->num_query_vertices()
                            : index_->num_query_vertices();
  }
  std::span<const VertexId> candidates(VertexId u) const {
    return flat_ != nullptr ? flat_->candidates(u)
                            : std::span<const VertexId>(index_->at(u).candidates);
  }
  std::span<const Cardinality> cardinalities(VertexId u) const {
    return flat_ != nullptr
               ? flat_->cardinalities(u)
               : std::span<const Cardinality>(index_->at(u).cardinalities);
  }
  Cardinality CardinalityOf(VertexId u, VertexId v) const {
    return flat_ != nullptr ? flat_->CardinalityOf(u, v)
                            : index_->CardinalityOf(u, v);
  }
  /// Cluster pivots: the root's candidate set.
  std::span<const VertexId> pivots(const QueryTree& tree) const {
    return candidates(tree.root());
  }

 private:
  const CeciIndex* index_ = nullptr;
  const FlatCeciIndex* flat_ = nullptr;
};

}  // namespace ceci

#endif  // CECI_CECI_FLAT_INDEX_H_
