// Out-of-core CECI construction (§5, second distributed design, made
// physical).
//
// In the paper's shared-storage mode a machine holds only the
// beginning_position array (plus, here, labels and precomputed NLC runs)
// in memory and fetches adjacency lists from the lustre-resident CSR on
// demand while creating its CECI. StreamingCeciBuilder implements that
// path against a real `OnDemandCsr` file: every frontier expansion is one
// counted storage read. The produced index is bit-identical to the
// in-memory `CeciBuilder`'s (asserted in tests), and since refinement and
// intersection-based enumeration never touch the data graph, a full
// match can run without the graph ever being resident.
#ifndef CECI_CECI_STREAMING_BUILDER_H_
#define CECI_CECI_STREAMING_BUILDER_H_

#include <vector>

#include "ceci/ceci_builder.h"
#include "ceci/ceci_index.h"
#include "ceci/query_tree.h"
#include "graph/graph.h"
#include "graph/nlc_index.h"
#include "graphio/csr_store.h"
#include "util/status.h"

namespace ceci {

/// Builds CECIs from an on-demand CSR store.
class StreamingCeciBuilder {
 public:
  /// Wraps `store` (not owned; must outlive the builder).
  explicit StreamingCeciBuilder(OnDemandCsr* store);

  /// One-time resident preparation: the label→vertices index and the NLC
  /// runs, computed with a single streaming pass over the adjacency
  /// section (the store counts its IO). Idempotent.
  Status PrepareResidentIndexes();

  /// Candidate set of one query vertex under the LDF+NLC filters (used
  /// for the root pivots; mirrors CollectCandidates).
  std::vector<VertexId> CollectRootCandidates(const Graph& query,
                                              VertexId u) const;

  /// Runs Algorithm 1 + NTE construction reading adjacency on demand.
  /// `root_candidates`, when non-null, restricts the pivots (per-machine
  /// builds). Requires PrepareResidentIndexes() to have succeeded.
  Result<CeciIndex> Build(const Graph& query, const QueryTree& tree,
                          const std::vector<VertexId>* root_candidates,
                          BuildStats* stats);

  /// Storage traffic so far (delegates to the store).
  std::uint64_t requests() const { return store_->requests(); }
  std::uint64_t bytes_read() const { return store_->bytes_read(); }

 private:
  bool PassesFilters(const Graph& query, VertexId u,
                     std::span<const NlcIndex::Entry> profile,
                     VertexId v) const;

  std::span<const NlcIndex::Entry> NlcOf(VertexId v) const {
    return {nlc_entries_.data() + nlc_offsets_[v],
            nlc_entries_.data() + nlc_offsets_[v + 1]};
  }

  OnDemandCsr* store_;
  bool prepared_ = false;
  // Resident label→vertices buckets (CSR over labels).
  std::vector<std::uint64_t> bucket_offsets_;
  std::vector<VertexId> bucket_vertices_;
  std::size_t num_labels_ = 0;
  // Resident NLC runs.
  std::vector<std::uint64_t> nlc_offsets_;
  std::vector<NlcIndex::Entry> nlc_entries_;
};

}  // namespace ceci

#endif  // CECI_CECI_STREAMING_BUILDER_H_
