// CECI index persistence.
//
// §6.4 notes that for graphs whose CECI exceeds memory the authors "plan
// to store it in non-volatile memory". This module provides the storage
// half of that plan: a refined CECI serializes to a compact on-disk image
// and loads back for enumeration without re-running construction and
// refinement — useful when one query shape is matched repeatedly against
// a static data graph.
//
// The image records the matching order it was built for; loading validates
// it against the caller's QueryTree so an index can never be silently used
// with a mismatched order.
#ifndef CECI_CECI_INDEX_IO_H_
#define CECI_CECI_INDEX_IO_H_

#include <string>

#include "ceci/ceci_index.h"
#include "ceci/query_tree.h"
#include "util/status.h"

namespace ceci {

/// Serializes a (refined) index to `path`.
Status WriteCeciIndex(const CeciIndex& index, const QueryTree& tree,
                      const std::string& path);

/// Loads an index written by WriteCeciIndex. Fails if the image's matching
/// order does not match `tree`'s.
Result<CeciIndex> ReadCeciIndex(const QueryTree& tree,
                                const std::string& path);

}  // namespace ceci

#endif  // CECI_CECI_INDEX_IO_H_
