// CECI index persistence — the flat arena IS the on-disk format.
//
// §6.4 notes that for graphs whose CECI exceeds memory the authors "plan
// to store it in non-volatile memory". This module provides the storage
// half of that plan: a frozen FlatCeciIndex serializes as one versioned
// image — fixed header, slab table, the arena verbatim, then the pattern
// text it was built for — and loads back either by copying (owned arena)
// or by mmap (ceci_serve --index), where enumeration reads the mapped
// pages directly and every process serving the same file shares one
// physical copy.
//
// File layout (all little-endian, offsets from file start):
//
//   [0,   72)  Header     magic "CEIX", version 2, counts, offsets, CRCs
//   [72, 288)  slab table 9 × SlabRecord{offset, bytes, kind, crc}
//   [288,  …)  arena      FlatCeciIndex slabs, byte-for-byte
//   […,  EOF)  pattern    the query pattern text (optional, may be empty)
//
// Every region is checksummed (CRC-32): per-slab, the slab table, the
// pattern, and the header itself. Loading validates checksums (unless
// disabled) and then the full slab structure (FlatCeciIndex::FromArena),
// so a corrupt or truncated file yields a clean kCorruption Status —
// never a crash or an out-of-bounds read later. The image records the
// matching order it was built for; ReadFlatIndex validates it against the
// caller's QueryTree so an index can never be silently used with a
// mismatched order.
#ifndef CECI_CECI_INDEX_IO_H_
#define CECI_CECI_INDEX_IO_H_

#include <string>

#include "ceci/ceci_index.h"
#include "ceci/flat_index.h"
#include "ceci/query_tree.h"
#include "util/status.h"

namespace ceci {

struct IndexLoadOptions {
  /// Map the file read-only and enumerate straight from the page cache
  /// instead of copying the arena to the heap. The serving path sets this.
  bool use_mmap = false;
  /// Verify all CRC-32 checksums at load. Structural validation runs
  /// either way; this only gates bit-rot detection over slab payloads.
  bool verify_checksums = true;
};

/// A loaded image: the index plus the pattern text recorded at write time
/// (empty if the writer supplied none).
struct LoadedFlatIndex {
  FlatCeciIndex index;
  std::string pattern;
};

/// Serializes a frozen flat index to `path`. `pattern` is the query
/// pattern text the index was built for (used by `ceci_serve --index` to
/// reconstruct the query); pass "" if not needed.
Status WriteFlatIndex(const FlatCeciIndex& flat, const std::string& pattern,
                      const std::string& path);

/// Loads an image with no query-side validation (the caller reconstructs
/// the query from the stored pattern, e.g. the serving path).
Result<LoadedFlatIndex> OpenFlatIndex(const std::string& path,
                                      const IndexLoadOptions& options = {});

/// Loads an image for a known query. Fails with kInvalidArgument if the
/// image's query size or matching order does not match `tree`'s.
Result<FlatCeciIndex> ReadFlatIndex(const QueryTree& tree,
                                    const std::string& path,
                                    const IndexLoadOptions& options = {});

/// Reconstructs the mutable pointer-rich form from a flat image (ranks
/// decoded back to data-vertex ids). For tooling and tests that want to
/// resume refinement or compare layouts; enumeration should use the flat
/// form directly.
CeciIndex InflateFlatIndex(const FlatCeciIndex& flat);

/// Compatibility wrappers around the flat format for callers holding the
/// mutable form: Write freezes to flat (the index must satisfy the
/// refinement postcondition that every TE/NTE value is an alive candidate
/// of its child vertex), Read inflates back.
Status WriteCeciIndex(const CeciIndex& index, const QueryTree& tree,
                      const std::string& path);
Result<CeciIndex> ReadCeciIndex(const QueryTree& tree,
                                const std::string& path);

}  // namespace ceci

#endif  // CECI_CECI_INDEX_IO_H_
