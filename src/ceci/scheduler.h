// Parallel embedding enumeration across embedding clusters (paper §4.2).
//
// Three workload-distribution policies:
//  * kStatic (ST): clusters are dealt round-robin to workers up front.
//  * kCoarseDynamic (CGD): workers pull whole clusters from a shared pool.
//  * kFineDynamic (FGD): extreme clusters are decomposed first (§4.3) and
//    the resulting sub-cluster units are pulled dynamically.
#ifndef CECI_CECI_SCHEDULER_H_
#define CECI_CECI_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ceci/ceci_index.h"
#include "ceci/enumerator.h"
#include "ceci/extreme_cluster.h"
#include "ceci/profiler.h"
#include "ceci/query_tree.h"
#include "util/thread_pool.h"

namespace ceci {

enum class Distribution { kStatic, kCoarseDynamic, kFineDynamic };

std::string DistributionName(Distribution d);

struct ScheduleOptions {
  std::size_t threads = 1;
  Distribution distribution = Distribution::kCoarseDynamic;
  /// Extreme-cluster threshold factor (§4.3; the paper fixes 0.2 in §6.3).
  double beta = 0.2;
  /// Stop after this many embeddings across all workers; 0 = unlimited.
  std::uint64_t limit = 0;
  EnumOptions enumeration;
  /// Compute the cluster/work-unit skew summaries (profiler support).
  /// Off by default: the summaries sort a copy of the cardinalities, which
  /// a counter-only run should not pay for.
  bool collect_profile = false;
  /// Cooperative execution budget shared by all workers (util/budget.h);
  /// null = unbounded. The scheduler charges the work-unit pool and each
  /// worker's enumeration state against it and stops pulling units once
  /// it is exhausted.
  BudgetTracker* budget = nullptr;
  /// Shared worker pool (serving mode). When set, the calling thread runs
  /// worker 0 and workers 1..N-1 are dispatched as one TaskGroup on the
  /// pool — the pool may concurrently carry other queries' workers, and a
  /// saturated pool degrades to the caller running every worker loop
  /// sequentially (work-conserving, never deadlocking). When null,
  /// enumeration spawns `threads` dedicated std::threads per query
  /// (the original single-query behaviour).
  ThreadPool* pool = nullptr;
};

struct ScheduleResult {
  std::uint64_t embeddings = 0;
  EnumStats stats;               // aggregated over workers
  /// Per-worker CPU time (thread CPU clock). On a machine with enough
  /// cores this matches per-worker wall time; on smaller machines it is
  /// the simulated per-core busy time, so max(worker_seconds) is the
  /// simulated parallel makespan and their sum the serial-equivalent work.
  std::vector<double> worker_seconds;
  /// Work units each worker pulled/executed (one increment per unit; kept
  /// even without collect_profile — it is as cheap as the existing
  /// next_unit fetch).
  std::vector<std::uint64_t> worker_units;
  /// Embeddings each worker emitted; sums to `embeddings` (termination-
  /// accounting invariant, checked by AuditMatchResult).
  std::vector<std::uint64_t> worker_embeddings;
  /// A visitor returned false (the cross-worker abort flag fired).
  bool visitor_abort = false;
  /// The shared emission limit was reached.
  bool limit_hit = false;
  DecomposeStats decomposition;
  /// Skew over embedding-cluster cardinalities (pivot workloads, before
  /// decomposition) and over work-unit cardinalities (after). Filled only
  /// when ScheduleOptions::collect_profile.
  SkewSummary cluster_skew;
  SkewSummary unit_skew;
  double seconds = 0.0;          // wall time of the enumeration phase

  /// Simulated parallel completion time: max over workers.
  double SimulatedMakespan() const {
    double m = 0.0;
    for (double w : worker_seconds) m = m > w ? m : w;
    return m;
  }
  /// Total CPU work across workers.
  double TotalWork() const {
    double s = 0.0;
    for (double w : worker_seconds) s += w;
    return s;
  }
};

/// Runs parallel enumeration over either index layout (IndexView converts
/// implicitly from CeciIndex or FlatCeciIndex). `visitor` may be null
/// (count only); it is invoked concurrently from worker threads when set.
ScheduleResult RunParallelEnumeration(const Graph& data, const QueryTree& tree,
                                      IndexView index,
                                      const ScheduleOptions& options,
                                      const EmbeddingVisitor* visitor);

}  // namespace ceci

#endif  // CECI_CECI_SCHEDULER_H_
