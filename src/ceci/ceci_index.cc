#include "ceci/ceci_index.h"

#include <algorithm>

#include "util/heap_bytes.h"

namespace ceci {

Cardinality CeciIndex::CardinalityOf(VertexId u, VertexId v) const {
  const CeciVertexData& data = per_vertex_[u];
  // Before refinement no cardinalities exist; the documented value is 0
  // (indexing the empty vector here would read out of bounds).
  if (data.cardinalities.size() != data.candidates.size()) return 0;
  auto it =
      std::lower_bound(data.candidates.begin(), data.candidates.end(), v);
  if (it == data.candidates.end() || *it != v) return 0;
  return data.cardinalities[static_cast<std::size_t>(
      it - data.candidates.begin())];
}

void CeciIndex::Freeze() {
  for (auto& pv : per_vertex_) {
    pv.te.Freeze();
    for (auto& list : pv.nte) list.Freeze();
  }
}

std::size_t CeciIndex::TotalCandidateEdges() const {
  std::size_t total = 0;
  for (const auto& pv : per_vertex_) {
    total += pv.te.TotalValues();
    for (const auto& list : pv.nte) total += list.TotalValues();
  }
  return total;
}

std::size_t CeciIndex::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& pv : per_vertex_) {
    bytes += pv.candidates.size() * sizeof(VertexId);
    bytes += pv.cardinalities.size() * sizeof(Cardinality);
    bytes += pv.te.MemoryBytes();
    for (const auto& list : pv.nte) bytes += list.MemoryBytes();
  }
  return bytes;
}

std::size_t CeciIndex::MeasuredHeapBytes() const {
  std::size_t bytes = MeasuredVectorBytes(per_vertex_);
  for (const auto& pv : per_vertex_) {
    bytes += MeasuredVectorBytes(pv.candidates);
    bytes += MeasuredVectorBytes(pv.cardinalities);
    bytes += pv.te.MeasuredHeapBytes();
    bytes += MeasuredVectorBytes(pv.nte);
    for (const auto& list : pv.nte) bytes += list.MeasuredHeapBytes();
  }
  return bytes;
}

CeciIndex::VertexFootprint CeciIndex::MemoryFootprint(VertexId u) const {
  const CeciVertexData& pv = per_vertex_[u];
  VertexFootprint f;
  f.te_keys = pv.te.num_keys();
  f.te_edges = pv.te.TotalValues();
  f.te_bytes = pv.te.MemoryBytes();
  f.nte_lists = pv.nte.size();
  for (const auto& list : pv.nte) {
    f.nte_edges += list.TotalValues();
    f.nte_bytes += list.MemoryBytes();
  }
  f.candidate_bytes = pv.candidates.size() * sizeof(VertexId) +
                      pv.cardinalities.size() * sizeof(Cardinality);
  return f;
}

}  // namespace ceci
