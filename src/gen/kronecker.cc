#include "gen/kronecker.h"

#include <random>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace ceci {

Graph GenerateKronecker(const KroneckerOptions& options) {
  CECI_CHECK(options.scale >= 1 && options.scale <= 30);
  const std::uint64_t n = std::uint64_t{1} << options.scale;
  const std::uint64_t m = n * static_cast<std::uint64_t>(options.edge_factor);

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  const double ab = options.a + options.b;
  const double c_norm =
      options.c / (1.0 - ab);  // probability of quadrant C given not A/B

  GraphBuilder builder;
  builder.ReserveVertices(n);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t u = 0, v = 0;
    for (int bit = 0; bit < options.scale; ++bit) {
      // Noise per level as in the Graph500 reference: jitter quadrant
      // probabilities slightly so the degree distribution is not exactly
      // self-similar.
      double r1 = uniform(rng);
      double r2 = uniform(rng);
      int ubit = r1 > ab ? 1 : 0;
      int vbit;
      if (ubit == 0) {
        vbit = r2 > options.a / ab ? 1 : 0;
      } else {
        vbit = r2 > c_norm ? 1 : 0;
      }
      u = (u << 1) | static_cast<std::uint64_t>(ubit);
      v = (v << 1) | static_cast<std::uint64_t>(vbit);
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  auto graph = builder.Build();
  CECI_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

}  // namespace ceci
