#include "gen/paper_queries.h"

#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace ceci {

Graph MakePaperQuery(PaperQuery which) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::size_t n = 0;
  switch (which) {
    case PaperQuery::kQG1:  // triangle
      n = 3;
      edges = {{0, 1}, {1, 2}, {0, 2}};
      break;
    case PaperQuery::kQG2:  // square (4-cycle)
      n = 4;
      edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
      break;
    case PaperQuery::kQG3:  // chordal square
      n = 4;
      edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}};
      break;
    case PaperQuery::kQG4:  // 4-clique
      n = 4;
      edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
      break;
    case PaperQuery::kQG5:  // house: 5-cycle plus one chord
      n = 5;
      edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 4}};
      break;
  }
  GraphBuilder builder;
  builder.ReserveVertices(n);
  for (VertexId v = 0; v < n; ++v) builder.AddLabel(v, 0);
  for (auto [u, v] : edges) builder.AddEdge(u, v);
  auto g = builder.Build();
  CECI_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

std::string PaperQueryName(PaperQuery which) {
  return "QG" + std::to_string(static_cast<int>(which));
}

}  // namespace ceci
