#include "gen/random_graphs.h"

#include <random>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace ceci {

Graph GenerateErdosRenyi(std::size_t n, std::size_t m, std::uint64_t seed) {
  CECI_CHECK(n >= 2);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> pick(0,
                                               static_cast<VertexId>(n - 1));
  GraphBuilder builder;
  builder.ReserveVertices(n);
  // Sampling with replacement then dedup in the builder; oversample a bit so
  // the final edge count lands near m despite collisions.
  std::size_t target = m + m / 16 + 8;
  for (std::size_t i = 0; i < target; ++i) {
    builder.AddEdge(pick(rng), pick(rng));
  }
  auto graph = builder.Build();
  CECI_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

Graph GenerateBarabasiAlbert(std::size_t n, std::size_t attach,
                             std::uint64_t seed) {
  CECI_CHECK(n > attach && attach >= 1);
  std::mt19937_64 rng(seed);
  GraphBuilder builder;
  builder.ReserveVertices(n);
  // Repeated-endpoint list: sampling an index uniformly from it realizes
  // degree-proportional selection.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * n * attach);
  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = static_cast<VertexId>(attach + 1); v < n; ++v) {
    for (std::size_t k = 0; k < attach; ++k) {
      std::uniform_int_distribution<std::size_t> pick(0,
                                                      endpoints.size() - 1);
      VertexId target = endpoints[pick(rng)];
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  auto graph = builder.Build();
  CECI_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

Graph GenerateSocialGraph(std::size_t n, std::size_t max_attach,
                          std::uint64_t seed, double triad_prob) {
  CECI_CHECK(n > max_attach && max_attach >= 1);
  std::mt19937_64 rng(seed);
  GraphBuilder builder;
  builder.ReserveVertices(n);
  std::vector<VertexId> endpoints;
  endpoints.reserve(n * (max_attach + 1));
  // Adjacency of already-inserted vertices, for triad formation.
  std::vector<std::vector<VertexId>> adj(n);
  auto add_edge = [&](VertexId a, VertexId b) {
    builder.AddEdge(a, b);
    adj[a].push_back(b);
    adj[b].push_back(a);
    endpoints.push_back(a);
    endpoints.push_back(b);
  };
  // Seed clique.
  for (VertexId u = 0; u <= max_attach; ++u) {
    for (VertexId v = u + 1; v <= max_attach; ++v) add_edge(u, v);
  }
  // Geometric attachment count mirrors the degree mass of real social
  // graphs: most vertices sit in the low-degree tail while hubs still
  // emerge preferentially.
  std::geometric_distribution<std::size_t> pick_attach(0.3);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (VertexId v = static_cast<VertexId>(max_attach + 1); v < n; ++v) {
    const std::size_t k = std::min(max_attach, 1 + pick_attach(rng));
    VertexId last_target = kInvalidVertex;
    for (std::size_t i = 0; i < k; ++i) {
      VertexId target = kInvalidVertex;
      if (last_target != kInvalidVertex && coin(rng) < triad_prob &&
          !adj[last_target].empty()) {
        // Triad formation (Holme–Kim): link to a neighbor of the previous
        // target, closing a triangle.
        std::uniform_int_distribution<std::size_t> pick(
            0, adj[last_target].size() - 1);
        target = adj[last_target][pick(rng)];
      } else {
        std::uniform_int_distribution<std::size_t> pick(
            0, endpoints.size() - 1);
        target = endpoints[pick(rng)];
      }
      if (target == v) continue;
      add_edge(v, target);
      last_target = target;
    }
  }
  auto graph = builder.Build();
  CECI_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

}  // namespace ceci
