// Classical random-graph generators used as laptop-scale analogs of the
// paper's SNAP datasets (see DESIGN.md §1.4): Barabási–Albert preferential
// attachment reproduces the power-law skew of the social graphs (FS, LJ,
// OK, YT) that drives CECI's embedding-cluster imbalance, and Erdős–Rényi
// approximates the flatter-degree web/citation graphs (WG, CP).
#ifndef CECI_GEN_RANDOM_GRAPHS_H_
#define CECI_GEN_RANDOM_GRAPHS_H_

#include <cstdint>

#include "graph/graph.h"

namespace ceci {

/// G(n, m) Erdős–Rényi: n vertices, m distinct undirected edges.
Graph GenerateErdosRenyi(std::size_t n, std::size_t m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree.
Graph GenerateBarabasiAlbert(std::size_t n, std::size_t attach,
                             std::uint64_t seed);

/// Social-graph analog (Holme–Kim style): preferential attachment with a
/// geometric per-vertex attachment count capped at `max_attach`, plus
/// triad formation — after each preferential link, the next link closes a
/// triangle through the previous target with probability `triad_prob`.
/// Unlike pure BA (minimum degree = attach, negligible clustering), this
/// reproduces both the low-degree fringe that CECI's degree/NLC filters
/// prune (Table 2's space savings) and the high clustering that makes
/// enumeration dominate runtime on real social graphs (§6.1).
Graph GenerateSocialGraph(std::size_t n, std::size_t max_attach,
                          std::uint64_t seed, double triad_prob = 0.5);

}  // namespace ceci

#endif  // CECI_GEN_RANDOM_GRAPHS_H_
