// The five unlabeled query graphs QG1–QG5 of the paper's Figure 6, as used
// by PsgL, TTJ, and DualSim (§6). All vertices carry label 0. The shapes
// are chosen to satisfy the backtracking-depth constraints stated in §6.3
// (QG1 depth 3, QG3 depth 4, QG5 depth 5):
//
//   QG1 triangle        QG2 square          QG3 chordal square
//   QG4 4-clique        QG5 house (5-cycle + chord)
#ifndef CECI_GEN_PAPER_QUERIES_H_
#define CECI_GEN_PAPER_QUERIES_H_

#include <string>

#include "graph/graph.h"

namespace ceci {

enum class PaperQuery { kQG1 = 1, kQG2 = 2, kQG3 = 3, kQG4 = 4, kQG5 = 5 };

/// Builds the requested query graph.
Graph MakePaperQuery(PaperQuery which);

/// "QG1" .. "QG5".
std::string PaperQueryName(PaperQuery which);

/// All five, in order.
inline constexpr PaperQuery kAllPaperQueries[] = {
    PaperQuery::kQG1, PaperQuery::kQG2, PaperQuery::kQG3, PaperQuery::kQG4,
    PaperQuery::kQG5};

}  // namespace ceci

#endif  // CECI_GEN_PAPER_QUERIES_H_
