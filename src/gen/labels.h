// Label assignment utilities.
//
// The paper's Fig. 9 experiment injects each vertex of the RD graph with
// one of 100 random labels, and the HU graph carries one or more of 90
// labels per vertex (§6.2). These helpers reproduce both schemes.
#ifndef CECI_GEN_LABELS_H_
#define CECI_GEN_LABELS_H_

#include <cstdint>

#include "graph/graph.h"

namespace ceci {

/// Returns a copy of `g` with every vertex assigned one label drawn
/// uniformly from [0, num_labels).
Graph AssignRandomLabels(const Graph& g, std::size_t num_labels,
                         std::uint64_t seed);

/// Returns a copy of `g` where each vertex carries between 1 and
/// `max_labels_per_vertex` distinct labels from [0, num_labels) — the
/// multi-label scheme of the Human dataset.
Graph AssignMultiLabels(const Graph& g, std::size_t num_labels,
                        std::size_t max_labels_per_vertex,
                        std::uint64_t seed);

}  // namespace ceci

#endif  // CECI_GEN_LABELS_H_
