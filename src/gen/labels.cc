#include "gen/labels.h"

#include <functional>
#include <random>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace ceci {
namespace {

Graph Rebuild(const Graph& g,
              const std::function<void(VertexId, GraphBuilder&)>& labeler) {
  GraphBuilder builder;
  builder.ReserveVertices(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    labeler(v, builder);
    for (VertexId w : g.neighbors(v)) {
      if (v < w) builder.AddEdge(v, w);
    }
  }
  auto out = builder.Build();
  CECI_CHECK(out.ok()) << out.status().ToString();
  return std::move(out).value();
}

}  // namespace

Graph AssignRandomLabels(const Graph& g, std::size_t num_labels,
                         std::uint64_t seed) {
  CECI_CHECK(num_labels >= 1);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Label> pick(
      0, static_cast<Label>(num_labels - 1));
  std::vector<Label> labels(g.num_vertices());
  for (auto& l : labels) l = pick(rng);
  return Rebuild(g, [&](VertexId v, GraphBuilder& b) {
    b.AddLabel(v, labels[v]);
  });
}

Graph AssignMultiLabels(const Graph& g, std::size_t num_labels,
                        std::size_t max_labels_per_vertex,
                        std::uint64_t seed) {
  CECI_CHECK(num_labels >= 1 && max_labels_per_vertex >= 1);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Label> pick_label(
      0, static_cast<Label>(num_labels - 1));
  std::uniform_int_distribution<std::size_t> pick_count(
      1, max_labels_per_vertex);
  std::vector<std::vector<Label>> labels(g.num_vertices());
  for (auto& ls : labels) {
    std::size_t k = pick_count(rng);
    for (std::size_t i = 0; i < k; ++i) ls.push_back(pick_label(rng));
  }
  return Rebuild(g, [&](VertexId v, GraphBuilder& b) {
    for (Label l : labels[v]) b.AddLabel(v, l);
  });
}

}  // namespace ceci
