// DFS-based connected query generator (paper §6.2).
//
// Queries of a requested size are extracted from a data graph by a random
// DFS walk: each newly visited vertex is added together with every backward
// edge to already-selected vertices, so the query is an induced connected
// subgraph and at least one isomorphic embedding is guaranteed to exist.
// Labels are inherited from the data vertices (first label only when a
// vertex is multi-labeled, as in the paper).
#ifndef CECI_GEN_QUERY_GEN_H_
#define CECI_GEN_QUERY_GEN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace ceci {

struct QueryGenOptions {
  std::size_t num_vertices = 5;
  std::uint64_t seed = 1;
  /// Inherit labels from data vertices (true for §6.2 labeled experiments;
  /// false produces all-label-0 queries like QG1–QG5).
  bool inherit_labels = true;
};

/// Extracts one connected query graph from `data`. Returns nullopt only if
/// the data graph has no connected subgraph of the requested size reachable
/// from the sampled sources (retries internally).
std::optional<Graph> GenerateQuery(const Graph& data,
                                   const QueryGenOptions& options);

/// Convenience: a batch of `count` queries with seeds seed, seed+1, ...
std::vector<Graph> GenerateQueries(const Graph& data, std::size_t count,
                                   const QueryGenOptions& options);

}  // namespace ceci

#endif  // CECI_GEN_QUERY_GEN_H_
