// Graph500 Kronecker (R-MAT) generator.
//
// The paper's synthetic dataset rand_500k is produced by the Graph500
// Kronecker generator [15]. This is a from-scratch implementation of the
// standard recursive-quadrant edge sampler with the Graph500 initiator
// probabilities (A=0.57, B=0.19, C=0.19, D=0.05), noise, dedup, and
// symmetrization.
#ifndef CECI_GEN_KRONECKER_H_
#define CECI_GEN_KRONECKER_H_

#include <cstdint>

#include "graph/graph.h"

namespace ceci {

struct KroneckerOptions {
  /// log2 of the vertex count.
  int scale = 14;
  /// Average undirected edges per vertex (Graph500 uses 16).
  int edge_factor = 16;
  /// Initiator matrix probabilities; Graph500 defaults.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
};

/// Generates a Kronecker graph. All vertices carry label 0; use
/// AssignRandomLabels() to label it afterwards.
Graph GenerateKronecker(const KroneckerOptions& options);

}  // namespace ceci

#endif  // CECI_GEN_KRONECKER_H_
