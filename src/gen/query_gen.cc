#include "gen/query_gen.h"

#include <algorithm>
#include <random>
#include <unordered_map>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace ceci {
namespace {

// One DFS attempt from `source`. Returns selected data vertices in visit
// order, or an empty vector if fewer than `want` vertices are reachable.
std::vector<VertexId> DfsSample(const Graph& data, VertexId source,
                                std::size_t want, std::mt19937_64& rng) {
  std::vector<VertexId> selected;
  std::vector<char> in_selected(data.num_vertices(), 0);
  std::vector<VertexId> stack = {source};
  while (!stack.empty() && selected.size() < want) {
    VertexId v = stack.back();
    stack.pop_back();
    if (in_selected[v]) continue;
    in_selected[v] = 1;
    selected.push_back(v);
    auto nbrs = data.neighbors(v);
    std::vector<VertexId> shuffled(nbrs.begin(), nbrs.end());
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (VertexId w : shuffled) {
      if (!in_selected[w]) stack.push_back(w);
    }
  }
  if (selected.size() < want) selected.clear();
  return selected;
}

}  // namespace

std::optional<Graph> GenerateQuery(const Graph& data,
                                   const QueryGenOptions& options) {
  CECI_CHECK(options.num_vertices >= 1);
  if (options.num_vertices > data.num_vertices()) return std::nullopt;
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<VertexId> pick(
      0, static_cast<VertexId>(data.num_vertices() - 1));
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<VertexId> selected =
        DfsSample(data, pick(rng), options.num_vertices, rng);
    if (selected.empty()) continue;
    std::unordered_map<VertexId, VertexId> remap;
    remap.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      remap[selected[i]] = static_cast<VertexId>(i);
    }
    GraphBuilder builder;
    builder.ReserveVertices(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      VertexId dv = selected[i];
      if (options.inherit_labels) {
        // First label only, mirroring the paper's single-label transfer.
        builder.AddLabel(static_cast<VertexId>(i), data.label(dv));
      } else {
        builder.AddLabel(static_cast<VertexId>(i), 0);
      }
      // Every backward edge to already-selected vertices (induced subgraph).
      for (VertexId w : data.neighbors(dv)) {
        auto it = remap.find(w);
        if (it != remap.end() && it->second < i) {
          builder.AddEdge(static_cast<VertexId>(i), it->second);
        }
      }
    }
    auto q = builder.Build();
    CECI_CHECK(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
  return std::nullopt;
}

std::vector<Graph> GenerateQueries(const Graph& data, std::size_t count,
                                   const QueryGenOptions& options) {
  std::vector<Graph> out;
  out.reserve(count);
  QueryGenOptions opt = options;
  for (std::size_t i = 0; i < count; ++i) {
    opt.seed = options.seed + i;
    auto q = GenerateQuery(data, opt);
    if (q.has_value()) out.push_back(std::move(*q));
  }
  return out;
}

}  // namespace ceci
