#include "graphio/csr_store.h"

#include <cstring>
#include <memory>

namespace ceci {
namespace {

constexpr char kMagic[4] = {'C', 'S', 'R', '2'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t num_vertices;
  std::uint64_t num_directed_edges;
  std::uint64_t num_label_entries;
};

template <typename T>
bool WriteRaw(std::ofstream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* data, std::size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteCsrStore(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");

  const std::size_t n = g.num_vertices();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + g.degree(v);
  }
  std::vector<std::uint32_t> label_offsets(n + 1, 0);
  std::vector<Label> labels;
  for (VertexId v = 0; v < n; ++v) {
    auto ls = g.labels(v);
    labels.insert(labels.end(), ls.begin(), ls.end());
    label_offsets[v + 1] = static_cast<std::uint32_t>(labels.size());
  }

  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.num_vertices = n;
  h.num_directed_edges = offsets[n];
  h.num_label_entries = labels.size();
  if (!WriteRaw(out, &h, 1) || !WriteRaw(out, offsets.data(), n + 1) ||
      !WriteRaw(out, label_offsets.data(), n + 1) ||
      !WriteRaw(out, labels.data(), labels.size())) {
    return Status::IoError("write failure on " + path);
  }
  for (VertexId v = 0; v < n; ++v) {
    auto adj = g.neighbors(v);
    if (!WriteRaw(out, adj.data(), adj.size())) {
      return Status::IoError("write failure on " + path);
    }
  }
  return Status::Ok();
}

Result<OnDemandCsr> OnDemandCsr::Open(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) return Status::IoError("cannot open " + path);
  Header h{};
  if (!ReadRaw(*file, &h, 1)) return Status::Corruption("truncated header");
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (h.version != kVersion) {
    return Status::Corruption("unsupported CSR store version");
  }

  OnDemandCsr store;
  store.offsets_.resize(h.num_vertices + 1);
  store.label_offsets_.resize(h.num_vertices + 1);
  store.labels_.resize(h.num_label_entries);
  if (!ReadRaw(*file, store.offsets_.data(), store.offsets_.size()) ||
      !ReadRaw(*file, store.label_offsets_.data(),
               store.label_offsets_.size()) ||
      !ReadRaw(*file, store.labels_.data(), store.labels_.size())) {
    return Status::Corruption("truncated resident sections in " + path);
  }
  if (store.offsets_.back() != h.num_directed_edges) {
    return Status::Corruption("offset array inconsistent in " + path);
  }
  store.adjacency_base_ = static_cast<std::uint64_t>(file->tellg());
  store.file_ = std::move(file);
  return store;
}

Status OnDemandCsr::ReadNeighbors(VertexId v, std::vector<VertexId>* out) {
  const std::uint64_t begin = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];
  out->resize(end - begin);
  ++requests_;
  if (begin == end) return Status::Ok();
  file_->seekg(static_cast<std::streamoff>(adjacency_base_ +
                                           begin * sizeof(VertexId)));
  if (!ReadRaw(*file_, out->data(), out->size())) {
    return Status::Corruption("truncated adjacency section");
  }
  bytes_read_ += out->size() * sizeof(VertexId);
  return Status::Ok();
}

}  // namespace ceci
