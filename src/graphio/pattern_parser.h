// A compact textual DSL for query patterns.
//
// Writing query graphs through GraphBuilder is verbose; the pattern DSL
// lets examples, tools, and tests spell a query in one line:
//
//   "(a:0)-(b:1)-(c:2); (a)-(c)"
//
// Grammar (whitespace-insensitive):
//   pattern  := chain (';' chain)*
//   chain    := vertex ('-' vertex)*
//   vertex   := '(' name (':' label (',' label)*)? ')'
//
// A chain adds an edge between each consecutive vertex pair. The first
// appearance of a name may declare labels; later appearances reference
// the same vertex (re-declaring different labels is an error). Unlabeled
// vertices get label 0. Vertex ids are assigned in order of first
// appearance, so "(a)" becomes query vertex 0, etc.
#ifndef CECI_GRAPHIO_PATTERN_PARSER_H_
#define CECI_GRAPHIO_PATTERN_PARSER_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace ceci {

/// Parses a pattern expression into a query graph.
Result<Graph> ParsePattern(const std::string& pattern);

/// Renders a query graph back into the DSL (stable round-trip form:
/// vertices named v0..vN in id order, chains expanded edge by edge).
std::string FormatPattern(const Graph& query);

}  // namespace ceci

#endif  // CECI_GRAPHIO_PATTERN_PARSER_H_
