#include "graphio/binary_csr.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/graph_builder.h"

namespace ceci {
namespace {

constexpr char kMagic[4] = {'C', 'E', 'C', 'I'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;        // undirected
  std::uint64_t num_label_entries;
};

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool WriteVec(std::ofstream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::size_t count, std::vector<T>* v) {
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteBinaryCsr(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");

  // Flatten: label entries as (vertex, label) pairs; edges as (u, v), u < v.
  std::vector<std::uint64_t> label_entries;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (Label l : g.labels(v)) {
      label_entries.push_back((static_cast<std::uint64_t>(v) << 32) | l);
    }
  }
  std::vector<std::uint64_t> edges;
  edges.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (v < w) edges.push_back((static_cast<std::uint64_t>(v) << 32) | w);
    }
  }

  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.num_vertices = g.num_vertices();
  h.num_edges = edges.size();
  h.num_label_entries = label_entries.size();
  if (!WritePod(out, h) || !WriteVec(out, label_entries) ||
      !WriteVec(out, edges)) {
    return Status::IoError("write failure on " + path);
  }
  return Status::Ok();
}

Result<Graph> ReadBinaryCsr(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  Header h{};
  if (!ReadPod(in, &h)) return Status::Corruption("truncated header");
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (h.version != kVersion) {
    return Status::Corruption("unsupported version " +
                              std::to_string(h.version));
  }
  std::vector<std::uint64_t> label_entries;
  std::vector<std::uint64_t> edges;
  if (!ReadVec(in, h.num_label_entries, &label_entries) ||
      !ReadVec(in, h.num_edges, &edges)) {
    return Status::Corruption("truncated payload in " + path);
  }
  GraphBuilder builder;
  builder.ReserveVertices(h.num_vertices);
  for (std::uint64_t e : label_entries) {
    builder.AddLabel(static_cast<VertexId>(e >> 32),
                     static_cast<Label>(e & 0xffffffffu));
  }
  for (std::uint64_t e : edges) {
    builder.AddEdge(static_cast<VertexId>(e >> 32),
                    static_cast<VertexId>(e & 0xffffffffu));
  }
  return builder.Build();
}

}  // namespace ceci
