#include "graphio/pattern_parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "graph/graph_builder.h"

namespace ceci {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Graph> Run() {
    SkipSpace();
    if (AtEnd()) return Status::InvalidArgument("empty pattern");
    CECI_RETURN_IF_ERROR(ParseChain());
    while (!AtEnd()) {
      if (!Consume(';')) {
        return Error("expected ';' between chains");
      }
      SkipSpace();
      if (AtEnd()) break;  // trailing ';' is allowed
      CECI_RETURN_IF_ERROR(ParseChain());
    }
    GraphBuilder builder;
    builder.ReserveVertices(order_.size());
    for (VertexId v = 0; v < order_.size(); ++v) {
      const auto& labels = labels_by_vertex_[v];
      if (labels.empty()) {
        builder.AddLabel(v, 0);
      } else {
        for (Label l : labels) builder.AddLabel(v, l);
      }
    }
    for (auto [a, b] : edges_) builder.AddEdge(a, b);
    if (edges_.empty() && order_.size() > 1) {
      return Status::InvalidArgument("pattern with several vertices but no edges");
    }
    return builder.Build();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

  Status ParseChain() {
    VertexId prev = kInvalidVertex;
    for (;;) {
      VertexId v = kInvalidVertex;
      Status st = ParseVertex(&v);
      if (!st.ok()) return st;
      if (prev != kInvalidVertex) {
        if (prev == v) return Error("self loop in pattern");
        edges_.emplace_back(prev, v);
      }
      prev = v;
      SkipSpace();
      if (AtEnd() || Peek() != '-') return Status::Ok();
      ++pos_;  // consume '-'
    }
  }

  Status ParseVertex(VertexId* out) {
    if (!Consume('(')) return Error("expected '('");
    SkipSpace();
    std::string name;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      name.push_back(Peek());
      ++pos_;
    }
    if (name.empty()) return Error("expected vertex name");

    std::vector<Label> labels;
    SkipSpace();
    if (!AtEnd() && Peek() == ':') {
      ++pos_;
      for (;;) {
        SkipSpace();
        std::string digits;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          digits.push_back(Peek());
          ++pos_;
        }
        if (digits.empty()) return Error("expected label");
        if (digits.size() > 9) return Error("label out of range");
        labels.push_back(static_cast<Label>(std::stoul(digits)));
        SkipSpace();
        if (AtEnd() || Peek() != ',') break;
        ++pos_;
      }
    }
    if (!Consume(')')) return Error("expected ')'");

    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      VertexId id = static_cast<VertexId>(order_.size());
      by_name_[name] = id;
      order_.push_back(name);
      labels_by_vertex_.push_back(labels);
      *out = id;
      return Status::Ok();
    }
    VertexId id = it->second;
    if (!labels.empty() && labels_by_vertex_[id] != labels) {
      if (labels_by_vertex_[id].empty()) {
        labels_by_vertex_[id] = labels;
      } else {
        return Error("vertex '" + name + "' re-declared with other labels");
      }
    }
    *out = id;
    return Status::Ok();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::map<std::string, VertexId> by_name_;
  std::vector<std::string> order_;
  std::vector<std::vector<Label>> labels_by_vertex_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace

Result<Graph> ParsePattern(const std::string& pattern) {
  return Parser(pattern).Run();
}

std::string FormatPattern(const Graph& query) {
  std::ostringstream out;
  auto vertex = [&](VertexId v) {
    out << "(v" << v;
    auto labels = query.labels(v);
    if (!(labels.size() == 1 && labels[0] == 0)) {
      out << ":";
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out << ",";
        out << labels[i];
      }
    }
    out << ")";
  };
  bool first = true;
  bool any_edge = false;
  for (VertexId a = 0; a < query.num_vertices(); ++a) {
    for (VertexId b : query.neighbors(a)) {
      if (b <= a) continue;
      any_edge = true;
      if (!first) out << "; ";
      first = false;
      vertex(a);
      out << "-";
      vertex(b);
    }
  }
  if (!any_edge) {
    for (VertexId v = 0; v < query.num_vertices(); ++v) {
      if (!first) out << "; ";
      first = false;
      vertex(v);
    }
  }
  return out.str();
}

}  // namespace ceci
