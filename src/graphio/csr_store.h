// On-demand CSR graph store — the physical realization of the paper's
// shared-storage mode (§5).
//
// The paper's second distributed design keeps a single CSR copy of the
// data graph on a lustre file system; every machine holds only the
// beginning_position (offset) array in memory and fetches adjacency lists
// on demand. CsrStoreWriter lays that format out on disk and OnDemandCsr
// reads it: offsets and labels stay resident, Neighbors(v) seeks and reads
// just that adjacency list, counting requests and bytes. distsim's cost
// model mirrors these counters; this module makes the storage path real
// and testable (round-trip against the in-memory Graph).
//
// File layout (little-endian):
//   header    : magic "CSR2", version u32, |V| u64, directed-edge count u64,
//               label-entry count u64
//   offsets   : (|V|+1) x u64        — the beginning_position array
//   labels    : per-vertex label runs (offsets u32 x (|V|+1), labels u32)
//   adjacency : directed-edge count x u32, sorted per vertex
#ifndef CECI_GRAPHIO_CSR_STORE_H_
#define CECI_GRAPHIO_CSR_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ceci {

/// Serializes `g` into the on-demand CSR layout.
Status WriteCsrStore(const Graph& g, const std::string& path);

/// Reader over a WriteCsrStore file. Offsets and labels are resident;
/// adjacency lists are fetched per request. Not thread-safe — simulated
/// machines own private instances, like independent lustre clients.
class OnDemandCsr {
 public:
  /// Opens `path` and loads the resident sections.
  static Result<OnDemandCsr> Open(const std::string& path);

  OnDemandCsr(OnDemandCsr&&) = default;
  OnDemandCsr& operator=(OnDemandCsr&&) = default;

  std::size_t num_vertices() const { return offsets_.size() - 1; }
  std::size_t num_directed_edges() const { return offsets_.back(); }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Labels of v (resident, no IO).
  std::span<const Label> labels(VertexId v) const {
    return {labels_.data() + label_offsets_[v],
            labels_.data() + label_offsets_[v + 1]};
  }

  /// Fetches the adjacency list of v from storage into `out` (sorted).
  /// Counts one request and degree(v)*4 bytes.
  Status ReadNeighbors(VertexId v, std::vector<VertexId>* out);

  /// Storage traffic so far.
  std::uint64_t requests() const { return requests_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  OnDemandCsr() = default;

  std::unique_ptr<std::ifstream> file_;
  std::uint64_t adjacency_base_ = 0;  // file offset of the adjacency section
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> label_offsets_;
  std::vector<Label> labels_;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace ceci

#endif  // CECI_GRAPHIO_CSR_STORE_H_
