// SNAP-style text graph I/O.
//
// Two formats are supported:
//  * Plain edge lists ("u v" per line, '#' comments) — the format of the
//    Stanford SNAP datasets the paper evaluates on (§6, Table 1).
//  * Labeled graphs ("v <id> <label...>" vertex lines followed by
//    "e <u> <v>" edge lines), the format used by labeled benchmarks such as
//    the Human dataset.
#ifndef CECI_GRAPHIO_EDGE_LIST_H_
#define CECI_GRAPHIO_EDGE_LIST_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace ceci {

/// Reads a plain "u v" edge list. All vertices get label 0.
Result<Graph> ReadEdgeList(const std::string& path);

/// Parses a plain edge list from a string (testing hook).
Result<Graph> ParseEdgeList(const std::string& text);

/// Reads a labeled graph in "v id label..." / "e u v" format.
Result<Graph> ReadLabeledGraph(const std::string& path);

/// Parses the labeled format from a string (testing hook).
Result<Graph> ParseLabeledGraph(const std::string& text);

/// Writes `g` in the labeled "v/e" format (round-trips through
/// ReadLabeledGraph).
Status WriteLabeledGraph(const Graph& g, const std::string& path);

}  // namespace ceci

#endif  // CECI_GRAPHIO_EDGE_LIST_H_
