// Binary CSR serialization.
//
// The paper's shared-storage distributed mode (§5) keeps one copy of the
// data graph in CSR form on a lustre file system, located through a
// beginning_position array. This module provides that on-disk format: a
// small header, the offsets (beginning_position) array, the adjacency
// array, and the label arrays. distsim's SharedStore reads adjacency lists
// through it with per-read IO accounting.
#ifndef CECI_GRAPHIO_BINARY_CSR_H_
#define CECI_GRAPHIO_BINARY_CSR_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace ceci {

/// Serializes `g` to `path` in CECI binary CSR format (versioned, with
/// magic "CECI").
Status WriteBinaryCsr(const Graph& g, const std::string& path);

/// Loads a graph written by WriteBinaryCsr.
Result<Graph> ReadBinaryCsr(const std::string& path);

}  // namespace ceci

#endif  // CECI_GRAPHIO_BINARY_CSR_H_
