#include "graphio/edge_list.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace ceci {
namespace {

Result<std::string> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Parses whitespace-separated unsigned integers from `line` into `out`
// (capacity `max`). Returns the number parsed, or -1 on malformed input.
int ParseUints(std::string_view line, std::uint64_t* out, int max) {
  int count = 0;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size()) break;
    if (count == max) return -1;
    std::uint64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(line.data() + i, line.data() + line.size(), value);
    if (ec != std::errc()) return -1;
    out[count++] = value;
    i = static_cast<std::size_t>(ptr - line.data());
  }
  return count;
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text) {
  GraphBuilder builder;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::uint64_t uv[2];
    int n = ParseUints(line, uv, 2);
    if (n == 0) continue;
    if (n != 2) {
      return Status::Corruption("edge list line " + std::to_string(lineno) +
                                ": expected 'u v'");
    }
    if (uv[0] >= kInvalidVertex || uv[1] >= kInvalidVertex) {
      return Status::Corruption("edge list line " + std::to_string(lineno) +
                                ": vertex id out of range");
    }
    builder.AddEdge(static_cast<VertexId>(uv[0]), static_cast<VertexId>(uv[1]));
  }
  if (builder.num_vertices() == 0) {
    return Status::Corruption("edge list contains no edges");
  }
  return builder.Build();
}

Result<Graph> ReadEdgeList(const std::string& path) {
  auto text = Slurp(path);
  if (!text.ok()) return text.status();
  return ParseEdgeList(*text);
}

Result<Graph> ParseLabeledGraph(const std::string& text) {
  GraphBuilder builder;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    char kind = line[0];
    std::string_view rest(line);
    rest.remove_prefix(1);
    std::uint64_t vals[18];
    int n = ParseUints(rest, vals, 18);
    if (kind == 't') continue;  // "t # <id>" transaction headers are ignored
    if (kind == 'v') {
      if (n < 1 || vals[0] >= kInvalidVertex) {
        return Status::Corruption("labeled graph line " +
                                  std::to_string(lineno) + ": bad vertex");
      }
      auto v = static_cast<VertexId>(vals[0]);
      if (n == 1) {
        builder.AddLabel(v, 0);
      } else {
        for (int i = 1; i < n; ++i) {
          builder.AddLabel(v, static_cast<Label>(vals[i]));
        }
      }
    } else if (kind == 'e') {
      if (n < 2 || vals[0] >= kInvalidVertex || vals[1] >= kInvalidVertex) {
        return Status::Corruption("labeled graph line " +
                                  std::to_string(lineno) + ": bad edge");
      }
      builder.AddEdge(static_cast<VertexId>(vals[0]),
                      static_cast<VertexId>(vals[1]));
    } else {
      return Status::Corruption("labeled graph line " +
                                std::to_string(lineno) +
                                ": unknown record kind");
    }
  }
  if (builder.num_vertices() == 0) {
    return Status::Corruption("labeled graph contains no vertices");
  }
  return builder.Build();
}

Result<Graph> ReadLabeledGraph(const std::string& path) {
  auto text = Slurp(path);
  if (!text.ok()) return text.status();
  return ParseLabeledGraph(*text);
}

Status WriteLabeledGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << v;
    for (Label l : g.labels(v)) out << " " << l;
    out << "\n";
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (v < w) out << "e " << v << " " << w << "\n";
    }
  }
  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

}  // namespace ceci
